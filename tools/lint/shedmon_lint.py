#!/usr/bin/env python3
"""shedmon_lint — static enforcement of shedmon's load-bearing invariants.

Every shedding decision in this tree must be bit-reproducible at any
(threads x shards), and observability must be strictly one-way: scraping a
run may never perturb it. The runtime test suites pin those properties after
the fact; this linter rejects the source patterns that break them before
they compile:

  wall-clock      Unsanctioned time sources (std::chrono::*_clock::now,
                  time(), gettimeofday, clock_gettime, ...) anywhere under
                  src/ outside the explicit allowlist. Decision paths take
                  time from the injectable rt::Clock; observability-only
                  measurement goes through util::MonotonicNowUs
                  (src/util/cycle_clock.*).
  rng             Nondeterministic or unseeded randomness anywhere under
                  src/: rand()/srand(), std::random_device, argless
                  std::mt19937, std::default_random_engine. All randomness
                  flows through explicitly seeded util::Rng.
  obs-read        Reading observability state from a decision subsystem
                  (src/core, src/shed, src/predict, src/query, src/features,
                  src/sketch): member calls to Snapshot()/Value() and uses of
                  obs::MetricsSnapshot. Decision code may *write* obs::
                  instruments, never read them back — that is what makes a
                  scraper unable to perturb a run.
  unordered-iter  Range-for over an unordered_{map,set,multimap,multiset} in
                  a decision subsystem. Iteration order is
                  implementation-defined, so anything accumulated in loop
                  order can leak nondeterminism into BinLog or accuracy
                  output. Annotate genuinely order-insensitive loops.

Suppression grammar (same line or the line directly above):

  // lint: allow(<rule-id>) <rationale>     suppress one rule
  // lint: order-insensitive <rationale>    suppress unordered-iter only

Lexing uses libclang when the Python bindings are importable (exact token
stream) and falls back to a resilient built-in C++ lexer otherwise; both
feed the same rule engine, so results are stable across environments.

Usage:
  tools/lint/shedmon_lint.py                  # lint src/ under the repo root
  tools/lint/shedmon_lint.py src/core tools   # lint specific paths
  tools/lint/shedmon_lint.py --self-test      # run the testdata fixtures
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

SOURCE_SUFFIXES = (".cpp", ".cc", ".cxx", ".h", ".hpp")

# Files whose whole purpose is to BE a sanctioned time source.
WALL_CLOCK_ALLOWLIST_PREFIXES = (
    "src/rt/clock.",        # the injectable rt::Clock and its SystemClock
    "src/util/cycle_clock.",  # TSC + the observability-only monotonic clock
    "src/obs/server.",      # socket timeouts on the HTTP endpoint's thread
)

# Subsystems on the shedding-decision / accuracy path: one-way observability
# and deterministic iteration are enforced here.
DECISION_DIR_PREFIXES = (
    "src/core/",
    "src/shed/",
    "src/predict/",
    "src/query/",
    "src/features/",
    "src/sketch/",
)

UNORDERED_TYPES = ("unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset")

ALLOW_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)")
ORDER_OK_RE = re.compile(r"lint:\s*order-insensitive")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __repr__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class LexedFile:
    """Comment/string-free view of one source file.

    `code_lines[i]` is line i+1 with string/char literal contents blanked and
    comments removed; `comments[line]` holds the comment text on that line
    (for suppression annotations and the self-test's expectation markers).
    """

    def __init__(self, path: str, code_lines: List[str], comments: Dict[int, str]):
        self.path = path
        self.code_lines = code_lines
        self.comments = comments

    def flat(self) -> Tuple[str, List[int]]:
        """The code joined with newlines plus an offset->line lookup table."""
        text = "\n".join(self.code_lines)
        line_starts = [0]
        for code_line in self.code_lines:
            line_starts.append(line_starts[-1] + len(code_line) + 1)
        return text, line_starts

    @staticmethod
    def line_of(offset: int, line_starts: List[int]) -> int:
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


# --------------------------------------------------------------------------
# Lexers
# --------------------------------------------------------------------------

def lex_fallback(path: str, text: str) -> LexedFile:
    """Hand-rolled C++ lexer: tracks //, block comments, string/char literals
    (with escapes) and raw strings, which is all the rule engine needs."""
    code_lines: List[str] = []
    comments: Dict[int, str] = {}
    code: List[str] = []
    line_no = 1
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_terminator = ""

    def end_line() -> None:
        nonlocal code
        code_lines.append("".join(code))
        code = []

    def add_comment(ch: str) -> None:
        comments[line_no] = comments.get(line_no, "") + ch

    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            if state == "line_comment":
                state = "code"
            end_line()
            line_no += 1
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                # Raw string? Look back for R / u8R / LR / uR / UR.
                m = re.search(r'(?:u8|[uUL])?R$', "".join(code[-3:]))
                if m:
                    dm = re.match(r'([^ ()\\\t\n]{0,16})\(', text[i + 1:i + 22])
                    if dm:
                        raw_terminator = ")" + dm.group(1) + '"'
                        state = "raw"
                        code.append('"')
                        i += 1 + len(dm.group(1)) + 1
                        continue
                state = "string"
                code.append('"')
                i += 1
                continue
            if ch == "'":
                prev = code[-1] if code else ""
                if prev.isalnum() or prev == "_":
                    # Digit separator (1'000'000); char literals are never
                    # preceded directly by an identifier/number character.
                    code.append("'")
                    i += 1
                    continue
                state = "char"
                code.append("'")
                i += 1
                continue
            code.append(ch)
            i += 1
            continue
        if state == "line_comment":
            add_comment(ch)
            i += 1
            continue
        if state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                add_comment(ch)
                i += 1
            continue
        if state == "string":
            if ch == "\\":
                i += 2
            elif ch == '"':
                state = "code"
                code.append('"')
                i += 1
            else:
                i += 1
            continue
        if state == "char":
            if ch == "\\":
                i += 2
            elif ch == "'":
                state = "code"
                code.append("'")
                i += 1
            else:
                i += 1
            continue
        if state == "raw":
            if text.startswith(raw_terminator, i):
                state = "code"
                code.append('"')
                i += len(raw_terminator)
            else:
                if ch == "\n":
                    end_line()
                    line_no += 1
                i += 1
            continue
    end_line()
    return LexedFile(path, code_lines, comments)


def try_import_libclang():
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def lex_libclang(cindex, path: str, text: str) -> Optional[LexedFile]:
    """Tokenize with libclang's lexer; returns None on any parse hiccup so
    the caller can fall back."""
    try:
        tu = cindex.TranslationUnit.from_source(
            path, args=["-std=c++20", "-fsyntax-only"],
            unsaved_files=[(path, text)],
            options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
        num_lines = text.count("\n") + 1
        code_acc: Dict[int, List[Tuple[int, str]]] = {}
        comments: Dict[int, str] = {}
        for token in tu.get_tokens(extent=tu.cursor.extent):
            loc = token.location
            kind = token.kind.name
            spelling = token.spelling
            if kind == "COMMENT":
                stripped = spelling.lstrip("/").strip("*/ ")
                for off, comment_line in enumerate(spelling.splitlines()):
                    comments[loc.line + off] = (
                        comments.get(loc.line + off, "") + comment_line.strip("/* "))
                _ = stripped
                continue
            if kind == "LITERAL" and (spelling.startswith('"') or "\"" in spelling[:3]
                                      or spelling.startswith("'")):
                spelling = '""' if '"' in spelling else "''"
            code_acc.setdefault(loc.line, []).append((loc.column, spelling))
        code_lines = []
        for line in range(1, num_lines + 1):
            parts = sorted(code_acc.get(line, []))
            code_lines.append(" ".join(p[1] for p in parts))
        return LexedFile(path, code_lines, comments)
    except Exception:
        return None


# --------------------------------------------------------------------------
# Suppression
# --------------------------------------------------------------------------

def suppressed(lexed: LexedFile, line: int, rule: str) -> bool:
    for probe in (line, line - 1):
        comment = lexed.comments.get(probe, "")
        if not comment:
            continue
        for m in ALLOW_RE.finditer(comment):
            if m.group(1) == rule:
                return True
        if rule == "unordered-iter" and ORDER_OK_RE.search(comment):
            return True
    return False


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

WALL_CLOCK_PATTERNS = [
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b"),
     "wall-clock read via std::chrono; decision paths must use rt::Clock, "
     "observability-only timing util::MonotonicNowUs"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday() is an unsanctioned time source"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime() is an unsanctioned time source"),
    (re.compile(r"\bstd\s*::\s*time\s*\("), "std::time() is an unsanctioned time source"),
    (re.compile(r"(?:^|[^\w:.>])time\s*\(\s*(?:&|NULL\b|nullptr\b|0\s*\)|\))"),
     "time() is an unsanctioned time source"),
    (re.compile(r"\b(?:localtime|gmtime)(?:_r)?\s*\("),
     "broken-down wall time is an unsanctioned time source"),
]

RNG_PATTERNS = [
    (re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic; seed a util::Rng explicitly"),
    (re.compile(r"(?:^|[^\w:.>])srand\s*\("), "srand() seeds global nondeterministic state"),
    (re.compile(r"(?:^|[^\w:.>])rand\s*\(\s*\)"), "rand() is unseeded global state"),
    (re.compile(r"\b(?:rand_r|drand48|lrand48|mrand48)\s*\("),
     "libc PRNGs bypass the seeded util::Rng discipline"),
    (re.compile(r"\bdefault_random_engine\b"),
     "std::default_random_engine is implementation-defined even when seeded"),
]

MT19937_RE = re.compile(r"\bmt19937(?:_64)?\b")

OBS_READ_PATTERNS = [
    (re.compile(r"(?:\.|->)\s*Snapshot\s*\("),
     "decision subsystems may write obs:: instruments but never snapshot/read them"),
    (re.compile(r"(?:\.|->)\s*Value\s*\("),
     "reading a metric value from a decision subsystem breaks one-way observability"),
    (re.compile(r"\bMetricsSnapshot\b"),
     "obs::MetricsSnapshot has no business in a decision subsystem"),
]


def pattern_findings(lexed: LexedFile, rule: str,
                     patterns: Sequence[Tuple[re.Pattern, str]]) -> List[Finding]:
    findings = []
    for idx, code_line in enumerate(lexed.code_lines):
        line = idx + 1
        for pattern, message in patterns:
            if pattern.search(code_line) and not suppressed(lexed, line, rule):
                findings.append(Finding(lexed.path, line, rule, message))
                break
    return findings


def skip_ws(text: str, i: int) -> int:
    while i < len(text) and text[i] in " \t\n":
        i += 1
    return i


def matching(text: str, i: int, open_ch: str, close_ch: str) -> int:
    """Index just past the bracket that closes text[i] (which must be open_ch);
    returns -1 if unbalanced."""
    depth = 0
    while i < len(text):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def mt19937_findings(lexed: LexedFile) -> List[Finding]:
    """Flag default-constructed (unseeded) std::mt19937 / mt19937_64."""
    findings = []
    text, line_starts = lexed.flat()
    for m in MT19937_RE.finditer(text):
        i = skip_ws(text, m.end())
        if text[i:i + 2] == "::":
            continue  # mt19937::result_type etc. — a type access, not a use
        # Optional declarator name.
        name = re.match(r"[A-Za-z_]\w*", text[i:])
        if name:
            i = skip_ws(text, i + name.end())
        bad = False
        if i < len(text) and text[i] in "({":
            close = ")" if text[i] == "(" else "}"
            end = matching(text, i, text[i], close)
            bad = end != -1 and text[i + 1:end - 1].strip() == ""
        elif name and i < len(text) and text[i] in ";,":
            bad = True  # `std::mt19937 gen;` — default-seeded
        if bad:
            line = LexedFile.line_of(m.start(), line_starts)
            if not suppressed(lexed, line, "rng"):
                findings.append(Finding(
                    lexed.path, line, "rng",
                    "argless std::mt19937 uses the fixed default seed on every "
                    "platform differently; pass an explicit seed (or use util::Rng)"))
    return findings


UNORDERED_DECL_RE = re.compile(
    r"\b(?:unordered_map|unordered_set|unordered_multimap|unordered_multiset)\s*<")
USING_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[\w:]*\b(?:unordered_map|unordered_set|"
    r"unordered_multimap|unordered_multiset)\s*<")


def unordered_symbols(text: str) -> Set[str]:
    """Names of variables/members/params declared with an unordered type in
    `text` (comment/string-free code), plus one level of type aliases."""
    symbols: Set[str] = set()
    aliases: Set[str] = set()
    for m in USING_ALIAS_RE.finditer(text):
        aliases.add(m.group(1))
    for m in UNORDERED_DECL_RE.finditer(text):
        open_idx = text.index("<", m.start())
        end = matching(text, open_idx, "<", ">")
        if end == -1:
            continue
        i = skip_ws(text, end)
        while i < len(text) and text[i] in "&*":
            i = skip_ws(text, i + 1)
        name = re.match(r"[A-Za-z_]\w*", text[i:])
        if name:
            symbols.add(name.group(0))
    for alias in aliases:
        for m in re.finditer(r"\b" + re.escape(alias) + r"\b\s*[&*]?\s*([A-Za-z_]\w*)", text):
            if m.group(1) != alias:
                symbols.add(m.group(1))
    return symbols


IDENT_RE = re.compile(r"[A-Za-z_]\w*")
FOR_RE = re.compile(r"\bfor\s*\(")


def range_for_findings(lexed: LexedFile, extra_symbol_text: str) -> List[Finding]:
    text, line_starts = lexed.flat()
    symbols = unordered_symbols(text) | unordered_symbols(extra_symbol_text)
    if not symbols:
        return []
    findings = []
    for m in FOR_RE.finditer(text):
        open_idx = m.end() - 1
        end = matching(text, open_idx, "(", ")")
        if end == -1:
            continue
        header = text[open_idx + 1:end - 1]
        # Top-level range-for colon (not ::, not inside nested brackets).
        colon = -1
        depth = 0
        j = 0
        while j < len(header):
            ch = header[j]
            if ch in "([{<":
                depth += 1
            elif ch in ")]}>":
                depth -= 1
            elif ch == ":" and depth == 0:
                if j + 1 < len(header) and header[j + 1] == ":":
                    j += 2
                    continue
                if j > 0 and header[j - 1] == ":":
                    j += 1
                    continue
                colon = j
                break
            j += 1
        if colon == -1:
            continue
        sequence = header[colon + 1:]
        hit = next((w for w in IDENT_RE.findall(sequence) if w in symbols), None)
        if hit is None:
            continue
        line = LexedFile.line_of(m.start(), line_starts)
        if not suppressed(lexed, line, "unordered-iter"):
            findings.append(Finding(
                lexed.path, line, "unordered-iter",
                f"range-for over unordered container '{hit}': iteration order is "
                "implementation-defined and can leak into BinLog/accuracy output; "
                "iterate a sorted copy or annotate `// lint: order-insensitive`"))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def rules_for(rel_path: str) -> List[str]:
    rules = []
    if rel_path.startswith("src/"):
        if not rel_path.startswith(WALL_CLOCK_ALLOWLIST_PREFIXES):
            rules.append("wall-clock")
        rules.append("rng")
    if rel_path.startswith(DECISION_DIR_PREFIXES):
        rules.append("obs-read")
        rules.append("unordered-iter")
    return rules


def sibling_header_text(root: str, rel_path: str) -> str:
    """Code text of same-directory headers, so member declarations in foo.h
    are visible when linting foo.cpp's loops."""
    if not rel_path.endswith((".cpp", ".cc", ".cxx")):
        return ""
    directory = os.path.dirname(os.path.join(root, rel_path))
    chunks = []
    try:
        entries = sorted(os.listdir(directory))
    except OSError:
        return ""
    for entry in entries:
        if entry.endswith((".h", ".hpp")):
            try:
                with open(os.path.join(directory, entry), encoding="utf-8",
                          errors="replace") as f:
                    lexed = lex_fallback(entry, f.read())
                chunks.append("\n".join(lexed.code_lines))
            except OSError:
                continue
    return "\n".join(chunks)


def lint_file(root: str, rel_path: str, text: str, cindex,
              virtual_path: Optional[str] = None) -> List[Finding]:
    path_for_rules = virtual_path or rel_path
    lexed = None
    if cindex is not None:
        lexed = lex_libclang(cindex, os.path.join(root, rel_path), text)
    if lexed is None:
        lexed = lex_fallback(rel_path, text)
    lexed.path = rel_path
    findings: List[Finding] = []
    active = rules_for(path_for_rules)
    if "wall-clock" in active:
        findings += pattern_findings(lexed, "wall-clock", WALL_CLOCK_PATTERNS)
    if "rng" in active:
        findings += pattern_findings(lexed, "rng", RNG_PATTERNS)
        findings += mt19937_findings(lexed)
    if "obs-read" in active:
        findings += pattern_findings(lexed, "obs-read", OBS_READ_PATTERNS)
    if "unordered-iter" in active:
        extra = "" if virtual_path else sibling_header_text(root, rel_path)
        findings += range_for_findings(lexed, extra)
    return findings


def collect_files(root: str, paths: Sequence[str]) -> List[str]:
    rel_files: List[str] = []
    for path in paths:
        absolute = os.path.join(root, path)
        if os.path.isfile(absolute):
            rel_files.append(os.path.relpath(absolute, root))
            continue
        for dirpath, dirnames, filenames in os.walk(absolute):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(SOURCE_SUFFIXES):
                    rel_files.append(os.path.relpath(os.path.join(dirpath, name), root))
    return [f.replace(os.sep, "/") for f in rel_files]


def run_lint(root: str, paths: Sequence[str], cindex) -> List[Finding]:
    findings: List[Finding] = []
    for rel_path in collect_files(root, paths):
        try:
            with open(os.path.join(root, rel_path), encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as err:
            print(f"shedmon_lint: cannot read {rel_path}: {err}", file=sys.stderr)
            continue
        findings += lint_file(root, rel_path, text, cindex)
    return findings


# --------------------------------------------------------------------------
# Self-test over tools/lint/testdata
# --------------------------------------------------------------------------

TEST_PATH_RE = re.compile(r"lint-test-path:\s*(\S+)")
EXPECT_RE = re.compile(r"expect:\s*([a-z-]+)")


def self_test(root: str, cindex) -> int:
    testdata = os.path.join(root, "tools", "lint", "testdata")
    fixtures = sorted(f for f in os.listdir(testdata) if f.endswith(SOURCE_SUFFIXES))
    if not fixtures:
        print("self-test: no fixtures found", file=sys.stderr)
        return 1
    failures = 0
    rules_covered: Set[str] = set()
    for fixture in fixtures:
        rel = f"tools/lint/testdata/{fixture}"
        with open(os.path.join(testdata, fixture), encoding="utf-8") as f:
            text = f.read()
        lexed = lex_fallback(rel, text)
        path_match = TEST_PATH_RE.search(text)
        if not path_match:
            print(f"self-test: {fixture} lacks a `lint-test-path:` directive")
            failures += 1
            continue
        virtual_path = path_match.group(1)
        expected: Set[Tuple[int, str]] = set()
        for line, comment in lexed.comments.items():
            for m in EXPECT_RE.finditer(comment):
                expected.add((line, m.group(1)))
                rules_covered.add(m.group(1))
        actual = {(f.line, f.rule)
                  for f in lint_file(root, rel, text, cindex, virtual_path=virtual_path)}
        for miss in sorted(expected - actual):
            print(f"self-test FAIL {fixture}:{miss[0]}: expected [{miss[1]}] did not fire")
            failures += 1
        for extra in sorted(actual - expected):
            print(f"self-test FAIL {fixture}:{extra[0]}: unexpected [{extra[1]}]")
            failures += 1
    for rule in ("wall-clock", "rng", "obs-read", "unordered-iter"):
        if rule not in rules_covered:
            print(f"self-test FAIL: no fixture exercises [{rule}]")
            failures += 1
    if failures == 0:
        print(f"self-test OK: {len(fixtures)} fixtures, "
              f"{len(rules_covered)} rules covered")
        return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", help="files or directories (default: src/)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above this script)")
    parser.add_argument("--engine", choices=("auto", "tokens", "libclang"), default="auto",
                        help="lexer backend (auto prefers libclang, falls back to tokens)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the testdata fixtures instead of linting the tree")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    cindex = None
    if args.engine in ("auto", "libclang"):
        cindex = try_import_libclang()
        if cindex is None and args.engine == "libclang":
            print("shedmon_lint: libclang requested but unavailable", file=sys.stderr)
            return 2

    if args.self_test:
        return self_test(root, cindex)

    paths = args.paths or ["src"]
    findings = run_lint(root, paths, cindex)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    if findings:
        print(f"shedmon_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
