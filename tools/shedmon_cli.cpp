// shedmon — command-line front end to the library.
//
//   shedmon generate --preset cesca2 --duration 30 --seed 7 --out t.smt
//   shedmon info t.smt
//   shedmon export-pcap t.smt t.pcap
//   shedmon inject-ddos t.smt --start 10 --duration 5 --pps 3000 --out t2.smt
//   shedmon run t.smt --queries counter,flows --k 0.5 --strategy mmfs_pkt
//   shedmon capture --listen-udp 0 --queries counter,flows --capacity 5e6
//   shedmon replay t.smt --udp 9000 --pps 20000
//
// `run` executes the full predictive load-shedding pipeline over a saved
// trace and reports per-query accuracy against an unsampled reference plus
// the shedding statistics — the same loop every bench uses. `capture` runs
// the same pipeline against live input (loopback UDP/TCP listeners or a
// growing pcap file) and `replay` feeds a saved trace into it.

#include <cstdio>
#include <cstring>
#include <csignal>
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/api/config.h"
#include "src/api/pipeline.h"
#include "src/api/sinks.h"
#include "src/capture/capture.h"
#include "src/capture/replay.h"
#include "src/obs/prometheus.h"
#include "src/core/runner.h"
#include "src/rt/clock.h"
#include "src/rt/fault.h"
#include "src/rt/resilient.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/generator.h"
#include "src/trace/pcap.h"
#include "src/trace/spec.h"
#include "src/trace/trace_io.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace {

using namespace shedmon;

// ----------------------------------------------------------- flag parsing --

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
          values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
          values_[arg.substr(2)] = argv[++i];
        } else {
          values_[arg.substr(2)] = "true";
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

trace::TraceSpec PresetByName(const std::string& name) {
  if (name == "cesca1") {
    return trace::CescaI();
  }
  if (name == "cesca2") {
    return trace::CescaII();
  }
  if (name == "abilene") {
    return trace::Abilene();
  }
  if (name == "cenic") {
    return trace::Cenic();
  }
  if (name == "upc1") {
    return trace::UpcI();
  }
  throw std::invalid_argument("unknown preset '" + name +
                              "' (cesca1|cesca2|abilene|cenic|upc1)");
}

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      out.push_back(item);
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

int Usage() {
  std::printf(
      "usage: shedmon <command> [flags]\n"
      "\n"
      "  generate    --preset P [--duration S] [--seed N] [--flows-per-s F]\n"
      "              [--burstiness B] --out FILE [--pcap FILE]\n"
      "  info        FILE\n"
      "  export-pcap FILE OUT.pcap [--snaplen N]\n"
      "  inject-ddos FILE --out FILE [--start S] [--duration S] [--pps N]\n"
      "              [--on-off S] [--target-ip HEX]\n"
      "  run         FILE --queries a,b,c [--k 0.5] [--strategy eq|cpu|pkt]\n"
      "              [--shedder predictive|reactive|none] [--custom]\n"
      "              [--oracle model|measured] [--bin-us N] [--threads N]\n"
      "              [--shards N] [--csv FILE] [--jsonl FILE]\n"
      "              [--config FILE] [--metrics-out FILE]\n"
      "              [--deadline F] [--ingest-cap N] [--ingest-policy P]\n"
      "              [--fault-plan SPEC] [--sink-retries N]\n"
      "              [--checkpoint FILE] [--checkpoint-every N] [--restore]\n"
      "              [--serve PORT] [--trace-out FILE]\n"
      "  capture     --listen-udp PORT | --listen-tcp PORT | --follow-pcap FILE\n"
      "              --queries a,b,c --capacity CYCLES [--bin-us N]\n"
      "              [--duration S] [--slots N] [--snap BYTES] [--queue N]\n"
      "              [--overflow block|drop-newest|drop-oldest]\n"
      "              [--late-slack-us N] (plus run's --threads --shards\n"
      "              --shedder --strategy --deadline --ingest-cap --csv\n"
      "              --jsonl --serve --trace-out --metrics-out)\n"
      "  replay      FILE --udp PORT | --tcp PORT [--pps N]\n"
      "  queries     (list available queries and their default min rates)\n"
      "\n"
      "capture flags:\n"
      "  --listen-udp PORT   capture framed (or raw) Ethernet frames from UDP\n"
      "                      datagrams on 127.0.0.1:PORT (0 picks a free port;\n"
      "                      the bound port is printed)\n"
      "  --listen-tcp PORT   capture length-framed records from one TCP stream\n"
      "                      (lossless; what `replay --tcp` sends)\n"
      "  --follow-pcap FILE  follow a growing pcap file, tail -f style\n"
      "  --capacity CYCLES   absolute cycle budget per bin (live capture has\n"
      "                      no trace to measure demand against)\n"
      "  --duration S        stop after S seconds (default: on SIGINT/SIGTERM,\n"
      "                      which also stop early and drain cleanly)\n"
      "  --slots/--snap/--queue/--overflow/--late-slack-us\n"
      "                      capture ring geometry: pre-allocated slots, bytes\n"
      "                      captured per frame, ring depth, overflow policy,\n"
      "                      and how far behind real time a packet may arrive\n"
      "\n"
      "run flags:\n"
      "  --config FILE       load an INI pipeline config (system knobs, query\n"
      "                      roster, sinks); other flags override the file\n"
      "  --metrics-out FILE  dump the metrics registry in Prometheus text\n"
      "                      format at end of run, and whenever the process\n"
      "                      receives SIGUSR1 mid-run\n"
      "  --deadline F        enforce a wall-clock budget of F x the bin\n"
      "                      duration per bin; overruns climb a degradation\n"
      "                      ladder (boost shedding, truncate, drop bin)\n"
      "  --ingest-cap N      bound the open bin at N records; --ingest-policy\n"
      "                      is block, drop-newest (default) or drop-oldest\n"
      "  --fault-plan SPEC   deterministic fault injection, e.g.\n"
      "                      'seed=7,stall_bin=3:80000,sink_fail_n=2'\n"
      "  --sink-retries N    retry failed CSV/JSONL sink writes up to N times\n"
      "                      (with backoff), then quarantine the sink\n"
      "  --checkpoint FILE   write a crash-safe snapshot (tmp+fsync+rename)\n"
      "                      every --checkpoint-every bins (default: one\n"
      "                      measurement interval); --restore resumes from it\n"
      "  --serve PORT        serve /metrics, /healthz, /stats and /trace over\n"
      "                      HTTP on 127.0.0.1:PORT for the whole run (PORT 0\n"
      "                      picks a free port; the bound port is printed)\n"
      "  --trace-out FILE    record per-stage spans and write them as Chrome\n"
      "                      trace-event JSON (load in Perfetto / about:tracing)\n");
  return 2;
}

// ------------------------------------------------------------- commands --

int CmdGenerate(const Flags& flags) {
  trace::TraceSpec spec = PresetByName(flags.Get("preset", "cesca2"));
  spec.duration_s = flags.GetDouble("duration", spec.duration_s);
  spec.seed = flags.GetU64("seed", spec.seed);
  spec.flows_per_s = flags.GetDouble("flows-per-s", spec.flows_per_s);
  spec.burstiness = flags.GetDouble("burstiness", spec.burstiness);
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const trace::Trace t = trace::TraceGenerator(spec).Generate();
  SaveTrace(t, out);
  std::printf("wrote %zu packets (%.1f s of '%s') to %s\n", t.packets.size(),
              spec.duration_s, spec.name.c_str(), out.c_str());
  if (flags.Has("pcap")) {
    const size_t n = trace::ExportPcap(t, flags.Get("pcap"));
    std::printf("exported %zu frames to %s\n", n, flags.Get("pcap").c_str());
  }
  return 0;
}

int CmdInfo(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "info: trace file required\n");
    return 2;
  }
  const trace::Trace t = trace::LoadTrace(flags.positional()[0]);
  uint64_t bytes = 0;
  std::map<net::AppClass, size_t> apps;
  std::map<uint32_t, uint64_t> talkers;
  for (const auto& rec : t.packets) {
    bytes += rec.wire_len;
    ++apps[rec.app];
    talkers[rec.tuple.src_ip] += rec.wire_len;
  }
  const double dur = static_cast<double>(t.duration_us()) * 1e-6;
  std::printf("trace:    %s\n", t.spec.name.c_str());
  std::printf("packets:  %zu (%.0f pkts/s)\n", t.packets.size(),
              static_cast<double>(t.packets.size()) / dur);
  std::printf("bytes:    %llu (%.2f Mb/s)\n", static_cast<unsigned long long>(bytes),
              static_cast<double>(bytes) * 8.0 / dur / 1e6);
  std::printf("duration: %.1f s\n\napplication mix (ground truth):\n", dur);
  for (const auto& [app, count] : apps) {
    std::printf("  %-10s %6.2f%%\n", std::string(net::AppClassName(app)).c_str(),
                100.0 * static_cast<double>(count) / static_cast<double>(t.packets.size()));
  }
  std::vector<std::pair<uint64_t, uint32_t>> top;
  for (const auto& [ip, b] : talkers) {
    top.emplace_back(b, ip);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop talkers by bytes:\n");
  for (size_t i = 0; i < top.size() && i < 5; ++i) {
    std::printf("  %-16s %llu\n", net::Ipv4ToString(top[i].second).c_str(),
                static_cast<unsigned long long>(top[i].first));
  }
  return 0;
}

int CmdExportPcap(const Flags& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "export-pcap: input and output files required\n");
    return 2;
  }
  const trace::Trace t = trace::LoadTrace(flags.positional()[0]);
  const size_t n = trace::ExportPcap(t, flags.positional()[1],
                                     static_cast<uint32_t>(flags.GetU64("snaplen", 0)));
  std::printf("exported %zu frames to %s\n", n, flags.positional()[1].c_str());
  return 0;
}

int CmdInjectDdos(const Flags& flags) {
  if (flags.positional().empty() || !flags.Has("out")) {
    std::fprintf(stderr, "inject-ddos: input file and --out required\n");
    return 2;
  }
  trace::Trace t = trace::LoadTrace(flags.positional()[0]);
  trace::DdosSpec ddos;
  ddos.start_s = flags.GetDouble("start", 10.0);
  ddos.duration_s = flags.GetDouble("duration", 5.0);
  ddos.pps = flags.GetDouble("pps", 3000.0);
  ddos.on_off_period_s = flags.GetDouble("on-off", 0.0);
  if (flags.Has("target-ip")) {
    ddos.target_ip = static_cast<uint32_t>(std::stoul(flags.Get("target-ip"), nullptr, 16));
  }
  InjectDdos(t, ddos, flags.GetU64("seed", 99));
  SaveTrace(t, flags.Get("out"));
  std::printf("injected DDoS (t=%.1f..%.1f s, %.0f pps) -> %s (%zu packets)\n",
              ddos.start_s, ddos.start_s + ddos.duration_s, ddos.pps,
              flags.Get("out").c_str(), t.packets.size());
  return 0;
}

// SIGUSR1 asks the run loop for a mid-run metrics dump; the handler only
// flips this flag, the dump itself happens between Push calls.
volatile std::sig_atomic_t g_metrics_dump_requested = 0;

void RequestMetricsDump(int) { g_metrics_dump_requested = 1; }

// SIGINT/SIGTERM ask the capture loop to stop; same flag-only discipline.
volatile std::sig_atomic_t g_stop_requested = 0;

void RequestStop(int) { g_stop_requested = 1; }

void DumpMetrics(const Pipeline& pipeline, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "run: cannot write metrics to %s\n", path.c_str());
    return;
  }
  obs::PrometheusEncoder::Encode(pipeline.Metrics().Snapshot(), out);
}

// End-of-run report shared by `run` and `capture`: per-query accuracy table
// plus the packet tally.
void PrintResults(const Pipeline& pipeline) {
  util::Table table({"query", "min rate", "mean srate", "accuracy error"});
  for (size_t q = 0; q < pipeline.num_queries(); ++q) {
    const std::string& name = pipeline.system().query(q).name();
    util::RunningStats rate;
    for (const auto& bin : pipeline.log()) {
      if (q < bin.rate.size()) {
        rate.Add(bin.rate[q]);
      }
    }
    std::string accuracy = "-";
    try {
      const auto acc = pipeline.AccuracyAt(q);
      accuracy = util::FmtPercent(acc.mean_error, 2) + " ±" +
                 util::Fmt(acc.stdev_error * 100.0, 2);
    } catch (const std::logic_error&) {
      // No reference tracked (config file with track_accuracy = false).
    }
    table.AddRow({name, util::Fmt(core::DefaultMinRate(name), 2), util::Fmt(rate.mean(), 2),
                  accuracy});
  }
  table.Print(std::cout);
  std::printf("\npackets: %llu in, %llu uncontrolled drops (%.2f%%)\n",
              static_cast<unsigned long long>(pipeline.total_packets()),
              static_cast<unsigned long long>(pipeline.total_dropped()),
              100.0 * static_cast<double>(pipeline.total_dropped()) /
                  std::max<double>(1.0, static_cast<double>(pipeline.total_packets())));
}

int CmdRun(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "run: trace file required\n");
    return 2;
  }
  const trace::Trace t = trace::LoadTrace(flags.positional()[0]);

  // --config loads the INI file as the baseline; every other flag still
  // overrides it. Without --config the flag defaults apply as before.
  const bool have_config = flags.Has("config");
  api::FileConfig file_config;
  if (have_config) {
    file_config = api::ParseConfigFile(flags.Get("config"));
  }
  // "Set this knob" = the flag was passed, or there is no config file to
  // defer to (then the CLI defaults fill in).
  const auto overrides = [&](const char* key) { return !have_config || flags.Has(key); };

  if (flags.Has("queries") || file_config.queries.empty()) {
    file_config.queries = SplitCsv(flags.Get("queries", "counter,flows,application"));
  }
  const std::vector<std::string>& queries = file_config.queries;
  if (overrides("oracle")) {
    file_config.oracle = flags.Get("oracle", "model") == "measured"
                             ? core::OracleKind::kMeasured
                             : core::OracleKind::kModel;
  }
  const core::OracleKind oracle = file_config.oracle;

  PipelineBuilder builder = PipelineBuilder::FromConfig(file_config);
  if (overrides("bin-us")) {
    builder.TimeBin(flags.GetU64("bin-us", 100'000));
  }
  if (overrides("shedder")) {
    const std::string shedder = flags.Get("shedder", "predictive");
    builder.Shedder(shedder == "reactive" ? core::ShedderKind::kReactive
                    : shedder == "none"   ? core::ShedderKind::kNoShed
                                          : core::ShedderKind::kPredictive);
  }
  if (overrides("strategy")) {
    const std::string strategy = flags.Get("strategy", "pkt");
    builder.Strategy(strategy == "eq"    ? shed::StrategyKind::kEqSrates
                     : strategy == "cpu" ? shed::StrategyKind::kMmfsCpu
                                         : shed::StrategyKind::kMmfsPkt);
  }
  if (flags.Has("custom") || !have_config) {
    builder.CustomShedding(flags.Has("custom"));
  }
  if (overrides("threads")) {
    builder.Threads(flags.GetU64("threads", 0));
  }
  if (overrides("shards")) {
    // Intra-query sharding: split one query's bin batch across the worker
    // pool (only effective with --threads > 0); results are bit-identical at
    // any shard count.
    builder.MaxShardsPerQuery(flags.GetU64("shards", 1));
  }

  // Capacity: --k provisions a fraction of the measured demand. A config
  // file's explicit cycles_per_bin wins unless --k is passed.
  const double k = flags.GetDouble("k", 0.5);
  double capacity = builder.config().cycles_per_bin;
  if (overrides("k") || capacity <= 0.0) {
    const double demand =
        core::MeasureMeanDemand(queries, t, oracle, builder.config().time_bin_us);
    capacity = std::max(1.0, demand * (1.0 - k));
    builder.CyclesPerBin(capacity);
  }

  // Sinks go through the builder so the rt layer (retry/quarantine) can wrap
  // them when --sink-retries is passed.
  if (flags.Has("csv")) {
    builder.CsvTo(flags.Get("csv"));
  }
  if (flags.Has("jsonl")) {
    builder.JsonlTo(flags.Get("jsonl"));
  }

  // Overload-protection knobs (src/rt).
  if (flags.Has("deadline")) {
    builder.Deadline(flags.GetDouble("deadline", 0.9));
  }
  if (flags.Has("ingest-cap")) {
    const std::string policy = flags.Get("ingest-policy", "drop-newest");
    builder.IngestCap(flags.GetU64("ingest-cap", 0),
                      policy == "block"         ? rt::OverflowPolicy::kBlock
                      : policy == "drop-oldest" ? rt::OverflowPolicy::kDropOldest
                                                : rt::OverflowPolicy::kDropNewest);
  }
  if (flags.Has("fault-plan")) {
    builder.InjectFaults(rt::FaultPlan::Parse(flags.Get("fault-plan")));
  }
  if (flags.Has("sink-retries")) {
    rt::RetryPolicy retry;
    retry.max_retries = static_cast<size_t>(flags.GetU64("sink-retries", retry.max_retries));
    builder.SinkRetry(retry);
  }
  if (flags.Has("checkpoint")) {
    builder.CheckpointTo(flags.Get("checkpoint"));
    if (flags.Has("checkpoint-every")) {
      builder.CheckpointEvery(flags.GetU64("checkpoint-every", 0));
    }
  }

  // Observability surfaces (src/obs): both are one-way — spans and scrapes
  // never feed back into shedding decisions, so results stay bit-identical.
  if (flags.Has("trace-out")) {
    builder.Tracing();
  }
  if (flags.Has("serve")) {
    builder.ServeOn(static_cast<uint16_t>(flags.GetU64("serve", 0)));
  }

  std::unique_ptr<Pipeline> pipeline;
  uint64_t resume_us = 0;
  if (flags.Has("restore") && flags.Has("checkpoint")) {
    pipeline = builder.RestoreOrBuild(flags.Get("checkpoint"));
    if (pipeline->next_bin() > 0) {
      resume_us = pipeline->next_bin() * pipeline->time_bin_us();
      std::fprintf(stderr, "run: restored %s, resuming at bin %llu (t=%.1f s)\n",
                   flags.Get("checkpoint").c_str(),
                   static_cast<unsigned long long>(pipeline->next_bin()),
                   static_cast<double>(resume_us) * 1e-6);
      // Builder sinks only attach on fresh builds; re-add them so the
      // resumed run keeps streaming rows (without the rt retry wrapper).
      if (flags.Has("csv")) {
        pipeline->AddObserver(std::make_unique<CsvBinSink>(flags.Get("csv")));
      }
      if (flags.Has("jsonl")) {
        pipeline->AddObserver(std::make_unique<JsonlBinSink>(flags.Get("jsonl")));
      }
    }
  } else {
    pipeline = builder.BuildUnique();
  }

  const std::string metrics_out = flags.Get("metrics-out");
  if (!metrics_out.empty()) {
    // Async-signal-safety: the handler only stores to a volatile
    // sig_atomic_t — no stdio, allocation or locks run in signal context;
    // the dump itself happens on the main loop between Push calls.
    // SA_RESTART keeps trace-file reads transparent to the interruption.
    struct sigaction action = {};
    sigemptyset(&action.sa_mask);
    action.sa_handler = RequestMetricsDump;
    action.sa_flags = SA_RESTART;
    sigaction(SIGUSR1, &action, nullptr);
  }

  if (flags.Has("serve")) {
    // Wrappers parse this line to find the bound port (--serve 0 binds an
    // ephemeral one), so keep its shape stable.
    std::printf("serving http://127.0.0.1:%u (/metrics /healthz /stats /trace)\n",
                pipeline->serve_port());
  }
  std::printf("running %zu queries at overload K=%.2f (capacity %.3g cycles/bin, %s)\n\n",
              queries.size(), k, capacity,
              oracle == core::OracleKind::kMeasured ? "measured cycles" : "model cycles");
  // Progress marker for wrappers (stdout is block-buffered when piped): the
  // banner doubles as "the SIGUSR1 handler is installed, the run is live".
  std::fflush(stdout);
  for (const net::PacketRecord& packet : t.packets) {
    if (packet.ts_us < resume_us) {
      continue;  // bins the restored checkpoint already covers
    }
    if (g_metrics_dump_requested != 0 && !metrics_out.empty()) {
      g_metrics_dump_requested = 0;
      DumpMetrics(*pipeline, metrics_out);
      std::fprintf(stderr, "run: metrics dumped to %s (SIGUSR1)\n", metrics_out.c_str());
    }
    pipeline->Push(net::Packet::View(packet));
  }
  pipeline->Finish();
  if (!metrics_out.empty()) {
    DumpMetrics(*pipeline, metrics_out);
  }
  if (flags.Has("trace-out")) {
    pipeline->DumpTrace(flags.Get("trace-out"));
  }

  PrintResults(*pipeline);
  if (flags.Has("deadline") || flags.Has("ingest-cap") || flags.Has("checkpoint")) {
    const api::PipelineStats stats = pipeline->Stats();
    std::printf(
        "rt: %llu deadline misses, degradation level %d, %llu ingest drops, "
        "%llu checkpoints\n",
        static_cast<unsigned long long>(stats.deadline_misses), stats.degradation_level,
        static_cast<unsigned long long>(stats.ingest_dropped),
        static_cast<unsigned long long>(stats.checkpoints));
  }
  if (flags.Has("csv")) {
    std::printf("per-bin log written to %s\n", flags.Get("csv").c_str());
  }
  if (flags.Has("jsonl")) {
    std::printf("per-bin log written to %s\n", flags.Get("jsonl").c_str());
  }
  if (flags.Has("trace-out")) {
    std::printf("trace (Chrome trace-event JSON) written to %s\n",
                flags.Get("trace-out").c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("metrics (Prometheus text format) written to %s\n", metrics_out.c_str());
  }
  return 0;
}

// shedmon capture: the same pipeline as `run`, fed by live sources instead
// of a saved trace. The capture consumer thread drives Push/AdvanceTime; this
// thread only waits for a signal, a --duration expiry, or a SIGUSR1 dump.
int CmdCapture(const Flags& flags) {
  capture::CaptureConfig capture_config;
  if (flags.Has("listen-udp")) {
    capture_config.sources.push_back(
        capture::SourceSpec::Udp(static_cast<uint16_t>(flags.GetU64("listen-udp", 0))));
  }
  if (flags.Has("listen-tcp")) {
    capture_config.sources.push_back(
        capture::SourceSpec::Tcp(static_cast<uint16_t>(flags.GetU64("listen-tcp", 0))));
  }
  if (flags.Has("follow-pcap")) {
    capture_config.sources.push_back(capture::SourceSpec::PcapFile(flags.Get("follow-pcap")));
  }
  if (capture_config.sources.empty()) {
    std::fprintf(stderr,
                 "capture: at least one of --listen-udp / --listen-tcp / "
                 "--follow-pcap required\n");
    return 2;
  }
  capture_config.slots = flags.GetU64("slots", capture_config.slots);
  capture_config.snap_bytes =
      static_cast<uint32_t>(flags.GetU64("snap", capture_config.snap_bytes));
  capture_config.queue_capacity = flags.GetU64("queue", capture_config.queue_capacity);
  const std::string overflow = flags.Get("overflow", "block");
  capture_config.overflow = overflow == "drop-newest"   ? rt::OverflowPolicy::kDropNewest
                            : overflow == "drop-oldest" ? rt::OverflowPolicy::kDropOldest
                                                        : rt::OverflowPolicy::kBlock;
  capture_config.late_slack_us = flags.GetU64("late-slack-us", capture_config.late_slack_us);

  const bool have_config = flags.Has("config");
  api::FileConfig file_config;
  if (have_config) {
    file_config = api::ParseConfigFile(flags.Get("config"));
  }
  if (flags.Has("queries") || file_config.queries.empty()) {
    file_config.queries = SplitCsv(flags.Get("queries", "counter,flows,application"));
  }

  PipelineBuilder builder = PipelineBuilder::FromConfig(file_config);
  if (!have_config || flags.Has("bin-us")) {
    builder.TimeBin(flags.GetU64("bin-us", 100'000));
  }
  // Live capture has no trace to measure demand against, so capacity is an
  // absolute cycle budget: --capacity, or the config file's cycles_per_bin.
  if (flags.Has("capacity")) {
    builder.CyclesPerBin(flags.GetDouble("capacity", 0.0));
  } else if (builder.config().cycles_per_bin <= 0.0) {
    std::fprintf(stderr,
                 "capture: --capacity CYCLES required (or a config file with "
                 "cycles_per_bin)\n");
    return 2;
  }
  if (flags.Has("shedder")) {
    const std::string shedder = flags.Get("shedder", "predictive");
    builder.Shedder(shedder == "reactive" ? core::ShedderKind::kReactive
                    : shedder == "none"   ? core::ShedderKind::kNoShed
                                          : core::ShedderKind::kPredictive);
  }
  if (flags.Has("strategy")) {
    const std::string strategy = flags.Get("strategy", "pkt");
    builder.Strategy(strategy == "eq"    ? shed::StrategyKind::kEqSrates
                     : strategy == "cpu" ? shed::StrategyKind::kMmfsCpu
                                         : shed::StrategyKind::kMmfsPkt);
  }
  if (flags.Has("custom")) {
    builder.CustomShedding(true);
  }
  if (flags.Has("threads")) {
    builder.Threads(flags.GetU64("threads", 0));
  }
  if (flags.Has("shards")) {
    builder.MaxShardsPerQuery(flags.GetU64("shards", 1));
  }
  if (flags.Has("csv")) {
    builder.CsvTo(flags.Get("csv"));
  }
  if (flags.Has("jsonl")) {
    builder.JsonlTo(flags.Get("jsonl"));
  }
  if (flags.Has("deadline")) {
    builder.Deadline(flags.GetDouble("deadline", 0.9));
  }
  if (flags.Has("ingest-cap")) {
    const std::string policy = flags.Get("ingest-policy", "drop-newest");
    builder.IngestCap(flags.GetU64("ingest-cap", 0),
                      policy == "block"         ? rt::OverflowPolicy::kBlock
                      : policy == "drop-oldest" ? rt::OverflowPolicy::kDropOldest
                                                : rt::OverflowPolicy::kDropNewest);
  }
  if (flags.Has("trace-out")) {
    builder.Tracing();
  }
  if (flags.Has("serve")) {
    builder.ServeOn(static_cast<uint16_t>(flags.GetU64("serve", 0)));
  }
  builder.CaptureFrom(capture_config);

  // Install the stop handler before the listeners open so an early signal is
  // never lost; same flag-only async-signal discipline as SIGUSR1.
  struct sigaction stop_action = {};
  sigemptyset(&stop_action.sa_mask);
  stop_action.sa_handler = RequestStop;
  stop_action.sa_flags = 0;  // no SA_RESTART: break the wait loop's sleep
  sigaction(SIGINT, &stop_action, nullptr);
  sigaction(SIGTERM, &stop_action, nullptr);
  const std::string metrics_out = flags.Get("metrics-out");
  if (!metrics_out.empty()) {
    struct sigaction action = {};
    sigemptyset(&action.sa_mask);
    action.sa_handler = RequestMetricsDump;
    action.sa_flags = SA_RESTART;
    sigaction(SIGUSR1, &action, nullptr);
  }

  std::unique_ptr<Pipeline> pipeline = builder.BuildUnique();

  // Wrappers parse these lines to find bound ports (--listen-udp 0 binds an
  // ephemeral one), so keep their shape stable.
  const capture::CaptureLoop* loop = pipeline->capture();
  for (size_t i = 0; i < loop->num_sources(); ++i) {
    const capture::SourceSpec& spec = loop->config().sources[i];
    switch (spec.kind) {
      case capture::SourceSpec::Kind::kUdp:
        std::printf("capturing udp://127.0.0.1:%u\n", loop->port(i));
        break;
      case capture::SourceSpec::Kind::kTcp:
        std::printf("capturing tcp://127.0.0.1:%u\n", loop->port(i));
        break;
      case capture::SourceSpec::Kind::kPcapFile:
        std::printf("capturing pcap://%s\n", spec.path.c_str());
        break;
    }
  }
  if (flags.Has("serve")) {
    std::printf("serving http://127.0.0.1:%u (/metrics /healthz /stats /trace)\n",
                pipeline->serve_port());
  }
  std::printf("running %zu queries (capacity %.3g cycles/bin); stop with SIGINT/SIGTERM\n\n",
              pipeline->num_queries(), builder.config().cycles_per_bin);
  std::fflush(stdout);

  // The capture threads do all the work; wait here for a stop reason.
  const double duration_s = flags.GetDouble("duration", 0.0);
  const std::shared_ptr<rt::Clock> clock = rt::DefaultClock();
  const uint64_t start_us = clock->NowUs();
  while (g_stop_requested == 0) {
    if (duration_s > 0.0 &&
        static_cast<double>(clock->NowUs() - start_us) >= duration_s * 1e6) {
      break;
    }
    if (g_metrics_dump_requested != 0 && !metrics_out.empty()) {
      g_metrics_dump_requested = 0;
      DumpMetrics(*pipeline, metrics_out);
      std::fprintf(stderr, "capture: metrics dumped to %s (SIGUSR1)\n", metrics_out.c_str());
    }
    clock->SleepUs(50'000);
  }

  pipeline->Finish();  // stops capture, drains the ring, closes the last bin
  if (!metrics_out.empty()) {
    DumpMetrics(*pipeline, metrics_out);
  }
  if (flags.Has("trace-out")) {
    pipeline->DumpTrace(flags.Get("trace-out"));
  }

  const capture::CaptureStats cs = pipeline->capture_stats();
  std::printf("capture: %llu frames (%llu bytes), %llu decoded packets, %llu truncated\n",
              static_cast<unsigned long long>(cs.frames),
              static_cast<unsigned long long>(cs.bytes),
              static_cast<unsigned long long>(cs.packets),
              static_cast<unsigned long long>(cs.truncated));
  std::printf(
      "capture drops: %llu total (%llu queue, %llu no-slot, %llu late, %llu decode)\n",
      static_cast<unsigned long long>(cs.dropped()),
      static_cast<unsigned long long>(cs.dropped_queue),
      static_cast<unsigned long long>(cs.dropped_no_slot),
      static_cast<unsigned long long>(cs.dropped_late),
      static_cast<unsigned long long>(cs.dropped_decode));
  PrintResults(*pipeline);
  if (flags.Has("csv")) {
    std::printf("per-bin log written to %s\n", flags.Get("csv").c_str());
  }
  if (flags.Has("jsonl")) {
    std::printf("per-bin log written to %s\n", flags.Get("jsonl").c_str());
  }
  if (flags.Has("trace-out")) {
    std::printf("trace (Chrome trace-event JSON) written to %s\n",
                flags.Get("trace-out").c_str());
  }
  if (!metrics_out.empty()) {
    std::printf("metrics (Prometheus text format) written to %s\n", metrics_out.c_str());
  }
  return 0;
}

// Accepts "PORT" or "host:PORT"; replay always targets loopback, the host
// part is tolerated so banner lines can be pasted back verbatim.
uint16_t ParsePort(const std::string& value) {
  const size_t colon = value.rfind(':');
  return static_cast<uint16_t>(
      std::stoul(colon == std::string::npos ? value : value.substr(colon + 1)));
}

int CmdReplay(const Flags& flags) {
  if (flags.positional().empty()) {
    std::fprintf(stderr, "replay: trace file required\n");
    return 2;
  }
  if (flags.Has("udp") == flags.Has("tcp")) {
    std::fprintf(stderr, "replay: exactly one of --udp PORT or --tcp PORT required\n");
    return 2;
  }
  const trace::Trace t = trace::LoadTrace(flags.positional()[0]);
  capture::ReplayOptions options;
  options.pps = flags.GetU64("pps", 0);
  if (flags.Has("udp")) {
    const uint16_t port = ParsePort(flags.Get("udp"));
    const size_t sent = capture::ReplayTraceUdp(t, port, options);
    std::printf("replayed %zu/%zu packets to udp://127.0.0.1:%u\n", sent, t.packets.size(),
                port);
  } else {
    const uint16_t port = ParsePort(flags.Get("tcp"));
    const size_t sent = capture::ReplayTraceTcp(t, port, options);
    std::printf("replayed %zu/%zu packets to tcp://127.0.0.1:%u\n", sent, t.packets.size(),
                port);
  }
  return 0;
}

int CmdQueries() {
  util::Table table({"query", "default min rate (Table 5.2)", "preferred shedding"});
  for (const auto& name : query::AllQueryNames()) {
    const auto q = query::MakeQuery(name);
    const bool custom = q->supports_custom_shedding();
    table.AddRow({name, util::Fmt(core::DefaultMinRate(name), 2),
                  std::string(q->preferred_sampling() == query::SamplingMethod::kFlow
                                  ? "flow sampling"
                                  : "packet sampling") +
                      (custom ? " + custom" : "")});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  try {
    if (command == "generate") {
      return CmdGenerate(flags);
    }
    if (command == "info") {
      return CmdInfo(flags);
    }
    if (command == "export-pcap") {
      return CmdExportPcap(flags);
    }
    if (command == "inject-ddos") {
      return CmdInjectDdos(flags);
    }
    if (command == "run") {
      return CmdRun(flags);
    }
    if (command == "capture") {
      return CmdCapture(flags);
    }
    if (command == "replay") {
      return CmdReplay(flags);
    }
    if (command == "queries") {
      return CmdQueries();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shedmon %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return Usage();
}
