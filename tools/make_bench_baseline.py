#!/usr/bin/env python3
"""Condense google-benchmark JSON output into a committed BENCH_*.json baseline.

Usage:
  # Record a PR baseline: pre-PR binary vs post-PR binary on the same machine.
  python3 tools/make_bench_baseline.py \
      --baseline /tmp/pre.json --post /tmp/post.json --pr 2 --out BENCH_PR2.json

  # CI / one-shot: condense a single run (no speedups).
  python3 tools/make_bench_baseline.py --post bench_micro.json --pr ci-nightly \
      --out bench_summary.json

Input files are produced with:
  bench_micro --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
      --benchmark_out=<file> --benchmark_out_format=json

Only `_mean` aggregates (or plain entries when repetitions are off) are kept.
The output maps benchmark name -> {real_time_ns, items_per_second?} for the
"post" run and, when a baseline is given, the baseline numbers plus the
throughput speedup post/baseline. Future PRs regress against the committed
file by re-running the same command and comparing like for like.
"""

import argparse
import json
import sys


# Multipliers normalizing google-benchmark's per-benchmark time_unit to ns.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def condense(path):
    with open(path) as fh:
        raw = json.load(fh)
    if "pr" in raw and "benchmarks" in raw:
        # Already a condensed BENCH_*.json: reuse its "post" run as the
        # baseline, so CI can compare a fresh run against the committed file.
        return {"context": raw.get("context", {}),
                "benchmarks": {name: row["post"]
                               for name, row in raw["benchmarks"].items()
                               if "post" in row}}
    out = {"context": {k: raw.get("context", {}).get(k) for k in
                       ("host_name", "num_cpus", "mhz_per_cpu", "library_build_type")},
           "benchmarks": {}}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "mean":
                continue
            name = bench.get("run_name", name.removesuffix("_mean"))
        scale = TIME_UNIT_NS[bench.get("time_unit", "ns")]
        entry = {"real_time_ns": bench["real_time"] * scale}
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        if "bytes_per_second" in bench:
            entry["bytes_per_second"] = bench["bytes_per_second"]
        # Machine-independent user counters (e.g. the thread-scaling runs'
        # model_speedup makespan ratio) ride along untouched.
        for key, value in bench.items():
            if key.startswith("model_"):
                entry[key] = value
        out["benchmarks"][name] = entry
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="pre-change benchmark JSON, raw google-benchmark "
                             "output or a committed BENCH_*.json (optional)")
    parser.add_argument("--post", required=True, help="post-change benchmark JSON")
    parser.add_argument("--pr", required=True, help="PR identifier for the record")
    parser.add_argument("--out", required=True, help="output file")
    args = parser.parse_args()

    post = condense(args.post)
    record = {
        "pr": args.pr,
        "benchmark_command": ("bench_micro --benchmark_repetitions=3 "
                              "--benchmark_report_aggregates_only=true "
                              "--benchmark_out=<file> --benchmark_out_format=json"),
        "context": post["context"],
        "benchmarks": {},
    }

    baseline = condense(args.baseline) if args.baseline else None
    for name, entry in sorted(post["benchmarks"].items()):
        row = {"post": entry}
        if baseline and name in baseline["benchmarks"]:
            base = baseline["benchmarks"][name]
            row["baseline"] = base
            if "items_per_second" in entry and base.get("items_per_second"):
                row["speedup"] = round(
                    entry["items_per_second"] / base["items_per_second"], 3)
            elif base.get("real_time_ns"):
                row["speedup"] = round(
                    base["real_time_ns"] / entry["real_time_ns"], 3)
        record["benchmarks"][name] = row

    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"wrote {args.out} ({len(record['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
