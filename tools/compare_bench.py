#!/usr/bin/env python3
"""Gate hot-path benchmark throughput against a committed BENCH_*.json.

Usage (what the Bench workflow runs):
  python3 tools/compare_bench.py --baseline BENCH_PR3.json --current bench_micro.json

Compares the benchmarks named in HOT_PATH (prefix match) and exits non-zero
when any of them regressed by more than --threshold (default 20%) in
throughput. Throughput is items_per_second / bytes_per_second when the
benchmark reports one, otherwise 1 / real_time. Benchmarks present on only
one side are reported but never fail the gate (renames and new benchmarks are
expected between PRs); non-hot-path benchmarks are compared as FYI only.

Both inputs may be raw google-benchmark JSON or a condensed BENCH_*.json
(see make_bench_baseline.py, whose condense() this reuses). Keep in mind the
committed baselines are recorded on a developer box: cross-machine runs drift
for real reasons, which is why this gate lives in the nightly/manual Bench
workflow rather than the blocking CI matrix.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from make_bench_baseline import condense  # noqa: E402

# Benchmarks whose throughput the paper's "deterministic worst-case cost"
# argument leans on (§3.2.1) plus the whole-pipeline runs; prefix-matched so
# parameterized variants (e.g. BM_PipelinePacketsThreads/threads:4) count.
HOT_PATH = (
    "BM_H3Hash",
    "BM_FusedAggregateHash",
    "BM_MultiResBitmapInsert",
    "BM_FeatureExtraction",
    "BM_PacketSampler",
    "BM_FlowSampler",
    "BM_BoyerMoore",
    "BM_PipelinePackets",
    "BM_PipelinePacketsTraced",
    "BM_PipelinePacketsThreads",
    "BM_PipelinePacketsShards",
)

# Paired overhead gates: (instrumented, plain, max tolerated fractional
# slowdown). Both sides come from the *current* run, so the gate is immune to
# the cross-machine drift that makes the baseline comparison advisory.
OVERHEAD_PAIRS = (
    ("BM_PipelinePacketsTraced", "BM_PipelinePackets", 0.05),
)


def throughput(entry):
    """Higher-is-better rate for one condensed benchmark entry."""
    for key in ("items_per_second", "bytes_per_second"):
        if key in entry:
            return entry[key], key
    return 1e9 / entry["real_time_ns"], "1/real_time"


def is_hot(name):
    return any(name == h or name.startswith(h + "/") or name.startswith(h + "<")
               for h in HOT_PATH)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json (or raw google-benchmark JSON)")
    parser.add_argument("--current", required=True,
                        help="fresh bench_micro JSON to check")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="max tolerated fractional throughput drop (default 0.20)")
    args = parser.parse_args()

    baseline = condense(args.baseline)["benchmarks"]
    current = condense(args.current)["benchmarks"]

    failures = []
    rows = []
    for name in sorted(set(baseline) | set(current)):
        hot = is_hot(name)
        tag = "hot" if hot else "fyi"
        if name not in current:
            rows.append((name, tag, None, "missing from current run"))
            continue
        if name not in baseline:
            rows.append((name, tag, None, "new (no baseline)"))
            continue
        base_rate, base_kind = throughput(baseline[name])
        cur_rate, cur_kind = throughput(current[name])
        if base_kind != cur_kind or base_rate <= 0:
            rows.append((name, tag, None, f"not comparable ({base_kind} vs {cur_kind})"))
            continue
        ratio = cur_rate / base_rate
        note = f"{ratio:.3f}x"
        if hot and ratio < 1.0 - args.threshold:
            note += f"  REGRESSION (>{args.threshold:.0%} drop)"
            failures.append((name, ratio))
        rows.append((name, tag, ratio, note))

    width = max(len(name) for name, *_ in rows) if rows else 0
    for name, tag, _, note in rows:
        print(f"{name:<{width}}  [{tag}]  {note}")

    for instrumented, plain, budget in OVERHEAD_PAIRS:
        if instrumented not in current or plain not in current:
            continue
        inst_rate, inst_kind = throughput(current[instrumented])
        plain_rate, plain_kind = throughput(current[plain])
        if inst_kind != plain_kind or plain_rate <= 0:
            continue
        ratio = inst_rate / plain_rate
        note = f"{instrumented} vs {plain}: {ratio:.3f}x"
        if ratio < 1.0 - budget:
            note += f"  OVERHEAD REGRESSION (>{budget:.0%} slowdown)"
            failures.append((f"{instrumented} (vs {plain})", ratio))
        print(note)

    if failures:
        print(f"\nFAIL: {len(failures)} hot-path benchmark(s) regressed "
              f"beyond the threshold:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.3f}x", file=sys.stderr)
        return 1
    print(f"\nOK: no hot-path throughput regression beyond {args.threshold:.0%}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
