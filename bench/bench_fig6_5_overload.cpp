// Fig. 6.5: average and minimum accuracy of the complete system (mmfs_pkt +
// custom shedding) at increasing overload levels, on the Ch. 6 validation
// query mix (Table 6.1: high-watermark, top-k, p2p-detector plus baseline
// queries).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.5", "system accuracy at increasing overload (custom shedding on)");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 6.0 : 12.0))
                         .Generate();
  const std::vector<std::string> names = {"high-watermark", "top-k", "p2p-detector",
                                          "counter", "flows"};

  util::Table table({"K", "avg acc (custom)", "min acc (custom)", "avg acc (sampling)",
                     "min acc (sampling)"});
  const double step = args.quick ? 0.25 : 0.1;
  for (double k = 0.0; k <= 0.9 + 1e-9; k += step) {
    auto custom = bench::RunAtOverload(trace, names, k, core::ShedderKind::kPredictive,
                                       shed::StrategyKind::kMmfsPkt, args,
                                       /*custom=*/true, /*min_rates=*/true);
    auto plain = bench::RunAtOverload(trace, names, k, core::ShedderKind::kPredictive,
                                      shed::StrategyKind::kMmfsPkt, args,
                                      /*custom=*/false, /*min_rates=*/true);
    table.AddRow({util::Fmt(k, 2), util::Fmt(custom.AverageAccuracy(), 2),
                  util::Fmt(custom.MinimumAccuracy(), 2),
                  util::Fmt(plain.AverageAccuracy(), 2),
                  util::Fmt(plain.MinimumAccuracy(), 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: with custom shedding the system degrades gracefully and\n"
      "keeps the minimum accuracy well above the sampling-only variant as the\n"
      "overload grows (Fig 6.5).\n\n");
  return 0;
}
