// Fig. 3.1: CPU usage of an "unknown" query under an artificially generated
// anomaly, compared with the packet, byte and 5-tuple-flow counts of the same
// traffic. The flows query's cycles track the flow count — not packets or
// bytes — which is the observation motivating multi-feature prediction.

#include "bench/bench_common.h"

#include <unordered_set>

#include "src/core/cost.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.1",
                     "CPU of an unknown query vs packets/bytes/flows under an anomaly");

  auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  trace::DdosSpec ddos;
  ddos.start_s = 8.0;
  ddos.duration_s = 5.0;
  ddos.pps = 2200.0;
  ddos.spoofed_sources = true;  // flow explosion with flat packet counts
  ddos.pkt_len = 60;
  InjectDdos(trace, ddos, 42 + args.seed_offset);

  auto oracle = core::MakeOracle(args.oracle);
  auto q = query::MakeQuery("flows");

  util::Table table({"t (s)", "cycles", "packets", "bytes", "5-tuple flows"});
  trace::Batcher batcher(trace, 100'000);
  trace::Batch batch;
  size_t bin = 0;
  size_t in_interval = 0;
  // Aggregate per second for readability.
  double cyc = 0.0, pkts = 0.0, bytes = 0.0, flows = 0.0;
  std::unordered_set<net::FiveTuple, net::FiveTupleHash> flow_set;
  while (batcher.Next(batch)) {
    query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
    core::WorkHint hint{q.get(), &batch.packets, 0.0};
    cyc += oracle->Run(core::WorkKind::kQuery, hint, [&] { q->ProcessBatch(in); });
    pkts += static_cast<double>(batch.size());
    bytes += static_cast<double>(batch.wire_bytes);
    for (const auto& pkt : batch.packets) {
      flow_set.insert(pkt.rec->tuple);
    }
    if (++in_interval >= q->interval_bins()) {
      q->EndInterval();
      in_interval = 0;
    }
    if (++bin % 10 == 0) {
      flows = static_cast<double>(flow_set.size());
      table.AddRow({util::Fmt(static_cast<double>(bin) / 10.0, 0), util::FmtSci(cyc, 2),
                    util::Fmt(pkts, 0), util::FmtSci(bytes, 2), util::Fmt(flows, 0)});
      cyc = pkts = bytes = 0.0;
      flow_set.clear();
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: during the spoofed attack (t=8..13 s) cycles and the\n"
      "flow count surge together while packets/bytes barely move (Fig 3.1).\n\n");
  return 0;
}
