// Fig. 6.1 / 6.2 / 6.3: the p2p-detector under three shedding methods —
// uniform packet sampling, flowwise sampling and its custom method — at the
// same budget: prediction vs actual usage, accuracy error, and the
// actual-vs-expected consumption ratio the enforcement correction absorbs.

#include "bench/bench_common.h"

#include "src/shed/sampler.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.1-6.3",
                     "p2p-detector: packet vs flow vs custom shedding at equal budget");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 8.0 : 15.0))
                         .Generate();
  auto oracle = core::MakeOracle(args.oracle);

  // Reference: unsampled run for ground truth.
  auto reference = query::RunReference({"p2p-detector"}, trace);

  util::Table table({"method", "budget fraction", "used/expected", "accuracy error"});
  for (const double fraction : {0.3, 0.5, 0.7}) {
    struct Method {
      std::string label;
      int kind;  // 0 = packet sampling, 1 = flow sampling, 2 = custom
    };
    for (const auto& method : {Method{"packet sampling", 0}, Method{"flow sampling", 1},
                               Method{"custom method", 2}}) {
      auto q = query::MakeQuery("p2p-detector");
      shed::PacketSampler pkt_sampler(41 + args.seed_offset);
      shed::FlowSampler flow_sampler(42 + args.seed_offset);

      trace::Batcher batcher(trace, 100'000);
      trace::Batch batch;
      double used = 0.0;
      double full_cost = 0.0;
      size_t in_interval = 0;
      // Estimate the full cost with a shadow instance for the expected line.
      auto shadow = query::MakeQuery("p2p-detector");
      while (batcher.Next(batch)) {
        {
          query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
          core::WorkHint hint{shadow.get(), &batch.packets, 0.0};
          full_cost +=
              oracle->Run(core::WorkKind::kQuery, hint, [&] { shadow->ProcessBatch(in); });
        }
        core::WorkHint hint{q.get(), nullptr, 0.0};
        if (method.kind == 2) {
          query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, fraction};
          hint.packets = &batch.packets;
          used += oracle->Run(core::WorkKind::kQuery, hint,
                              [&] { q->ProcessCustom(in, fraction); });
        } else {
          const trace::PacketVec sampled =
              method.kind == 0 ? pkt_sampler.Sample(batch.packets, fraction)
                               : flow_sampler.Sample(batch.packets, fraction);
          query::BatchInput in{sampled, batch.start_us, batch.duration_us, fraction};
          hint.packets = &sampled;
          used +=
              oracle->Run(core::WorkKind::kQuery, hint, [&] { q->ProcessBatch(in); });
        }
        if (++in_interval >= q->interval_bins()) {
          q->EndInterval();
          shadow->EndInterval();
          flow_sampler.Reseed(1000 + in_interval + args.seed_offset);
          in_interval = 0;
        }
      }
      if (in_interval > 0) {
        q->EndInterval();
        shadow->EndInterval();
      }
      const double expected = fraction * full_cost;
      table.AddRow({method.label, util::Fmt(fraction, 2),
                    util::Fmt(used / expected, 2),
                    util::FmtPercent(q->MeanError(*reference[0]), 1)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: at equal budget the custom method's accuracy error is far\n"
      "below flow sampling, which in turn beats packet sampling (Figs 6.1/6.2);\n"
      "the custom method's used/expected ratio deviates from 1 — the mismatch\n"
      "the enforcement EWMA correction absorbs (Fig 6.3).\n\n");
  return 0;
}
