// Fig. 3.9 / 3.10 / 3.11: EWMA vs SLR for the counter query, the EWMA error
// as a function of its weight alpha, and both predictors' error over time.
// SLR tracks packet-count-driven costs almost exactly; EWMA always lags.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.9/3.10/3.11", "EWMA vs SLR prediction (counter query)");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  std::printf("Fig 3.10 — EWMA error vs weight alpha:\n\n");
  util::Table alpha_table({"alpha", "mean error"});
  double best_alpha = 0.3;
  double best_err = 1e9;
  for (const double alpha : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    predict::PredictorConfig cfg;
    cfg.kind = predict::PredictorKind::kEwma;
    cfg.ewma_alpha = alpha;
    const auto run = bench::RunPredictionExperiment(trace, "counter", cfg, *oracle);
    alpha_table.AddRow({util::Fmt(alpha, 1), util::Fmt(run.MeanError(), 4)});
    if (run.MeanError() < best_err) {
      best_err = run.MeanError();
      best_alpha = alpha;
    }
  }
  alpha_table.Print(std::cout);

  predict::PredictorConfig ewma_cfg;
  ewma_cfg.kind = predict::PredictorKind::kEwma;
  ewma_cfg.ewma_alpha = best_alpha;
  predict::PredictorConfig slr_cfg;
  slr_cfg.kind = predict::PredictorKind::kSlr;

  const auto ewma = bench::RunPredictionExperiment(trace, "counter", ewma_cfg, *oracle);
  const auto slr = bench::RunPredictionExperiment(trace, "counter", slr_cfg, *oracle);

  std::printf("\nFig 3.9/3.11 — error over time (alpha = %.1f):\n\n", best_alpha);
  util::Table table({"t (s)", "EWMA err", "SLR err"});
  for (size_t i = 10; i + 9 < ewma.actual.size(); i += 10) {
    util::RunningStats e1;
    util::RunningStats e2;
    for (size_t j = i; j < i + 10; ++j) {
      e1.Add(util::RelativeError(ewma.predicted[j], ewma.actual[j]));
      e2.Add(util::RelativeError(slr.predicted[j], slr.actual[j]));
    }
    table.AddRow({util::Fmt(static_cast<double>(i) / 10.0, 0), util::Fmt(e1.mean(), 4),
                  util::Fmt(e2.mean(), 4)});
  }
  table.Print(std::cout);
  std::printf("\nsummary: EWMA mean %.4f vs SLR mean %.4f\n", ewma.MeanError(),
              slr.MeanError());
  std::printf(
      "\nPaper shape: SLR nearly overlaps the actual counter cost while EWMA\n"
      "lags every traffic change (Fig 3.9); the best alpha is ~0.3 (Fig 3.10).\n\n");
  return slr.MeanError() < ewma.MeanError() ? 0 : 1;
}
