// Fig. 3.5 / 3.6: prediction error and prediction cost as a function of
// (left) the MLR history length and (right) the FCBF threshold, overall and
// broken down by query. The paper picks 6 s of history and threshold 0.6.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.5/3.6", "MLR error vs cost: history length and FCBF threshold");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  const auto& queries = bench::SevenQueries();

  std::printf("Left plot — sweep of the history length (threshold fixed at 0.6):\n\n");
  util::Table hist_table({"history (s)", "mean error", "fit+sel cost (cycles/bin)"});
  const std::vector<size_t> histories = args.quick ? std::vector<size_t>{10, 60}
                                                   : std::vector<size_t>{10, 30, 60, 120, 300};
  for (const size_t h : histories) {
    util::RunningStats err;
    double cost = 0.0;
    size_t bins = 0;
    for (const auto& name : queries) {
      predict::PredictorConfig cfg;
      cfg.kind = predict::PredictorKind::kMlr;
      cfg.history = h;
      const auto run = bench::RunPredictionExperiment(trace, name, cfg, *oracle);
      err.Add(run.MeanError());
      cost += run.fit_cycles;
      bins = run.actual.size();
    }
    hist_table.AddRow({util::Fmt(static_cast<double>(h) / 10.0, 1), util::Fmt(err.mean(), 4),
                       util::Fmt(cost / static_cast<double>(bins), 0)});
  }
  hist_table.Print(std::cout);

  std::printf("\nRight plot — sweep of the FCBF threshold (history fixed at 6 s):\n\n");
  util::Table fcbf_table({"threshold", "mean error", "avg features selected"});
  const std::vector<double> thresholds =
      args.quick ? std::vector<double>{0.0, 0.6} : std::vector<double>{0.0, 0.3, 0.6, 0.8, 0.9};
  for (const double tau : thresholds) {
    util::RunningStats err;
    util::RunningStats nsel;
    for (const auto& name : queries) {
      predict::PredictorConfig cfg;
      cfg.kind = predict::PredictorKind::kMlr;
      cfg.fcbf_threshold = tau;
      const auto run = bench::RunPredictionExperiment(trace, name, cfg, *oracle);
      err.Add(run.MeanError());
      size_t total = 0;
      for (const auto& [idx, count] : run.selection_counts) {
        total += count;
      }
      nsel.Add(static_cast<double>(total) / std::max<double>(1.0, run.actual.size()));
    }
    fcbf_table.AddRow({util::Fmt(tau, 1), util::Fmt(err.mean(), 4), util::Fmt(nsel.mean(), 1)});
  }
  fcbf_table.Print(std::cout);
  std::printf(
      "\nPaper shape: error flattens beyond ~6 s of history; the FCBF threshold\n"
      "cuts the feature count (and fit cost) with little accuracy loss until\n"
      "~0.8-0.9, where the error ramps up (Figs. 3.5/3.6).\n\n");
  return 0;
}
