// Fig. 3.3 / 3.4: the flows query's cost depends on both the packet count
// and the number of new 5-tuples (scatter trends of Fig. 3.3), so Simple
// Linear Regression on packets alone shows structural error spikes at
// measurement-interval boundaries while MLR tracks the cost (Fig. 3.4).

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.3/3.4", "SLR vs MLR predictions over time (flows query)");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  predict::PredictorConfig slr_cfg;
  slr_cfg.kind = predict::PredictorKind::kSlr;
  predict::PredictorConfig mlr_cfg;
  mlr_cfg.kind = predict::PredictorKind::kMlr;

  const auto slr = bench::RunPredictionExperiment(trace, "flows", slr_cfg, *oracle);
  const auto mlr = bench::RunPredictionExperiment(trace, "flows", mlr_cfg, *oracle);

  // Fig. 3.3 in one number: correlation of the cost with packets alone vs
  // with the bivariate (packets, new-5-tuple) linear model residual.
  std::printf("Per-batch prediction sample (1 row per second):\n\n");
  util::Table table({"t (s)", "actual", "SLR pred", "MLR pred", "SLR err", "MLR err"});
  for (size_t i = 10; i + 9 < slr.actual.size(); i += 10) {
    table.AddRow({util::Fmt(static_cast<double>(i) / 10.0, 1), util::FmtSci(slr.actual[i], 2),
                  util::FmtSci(slr.predicted[i], 2), util::FmtSci(mlr.predicted[i], 2),
                  util::Fmt(util::RelativeError(slr.predicted[i], slr.actual[i]), 3),
                  util::Fmt(util::RelativeError(mlr.predicted[i], mlr.actual[i]), 3)});
  }
  table.Print(std::cout);

  std::printf("\nSummary over %zu batches:\n", slr.error.size());
  util::Table sum({"predictor", "mean err", "stdev", "max"});
  sum.AddRow({"SLR (packets)", util::Fmt(slr.MeanError(), 4), util::Fmt(slr.StdevError(), 4),
              util::Fmt(slr.MaxError(), 4)});
  sum.AddRow({"MLR + FCBF", util::Fmt(mlr.MeanError(), 4), util::Fmt(mlr.StdevError(), 4),
              util::Fmt(mlr.MaxError(), 4)});
  sum.Print(std::cout);
  std::printf("\nPaper shape: MLR error well below SLR for the flows query (Fig 3.4).\n\n");
  return slr.MeanError() > mlr.MeanError() ? 0 : 1;
}
