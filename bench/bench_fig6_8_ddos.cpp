// Fig. 6.8: performance of the complete system in the presence of massive
// DDoS attacks: overall accuracy and shedding rate over time while spoofed
// floods multiply the resource demands.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.8", "system performance under massive DDoS attacks");

  auto trace = trace::TraceGenerator(
                   bench::Scaled(trace::UpcI(), args, args.quick ? 10.0 : 20.0))
                   .Generate();
  const double dur = trace.spec.duration_s;
  trace::DdosSpec first;
  first.start_s = dur * 0.25;
  first.duration_s = dur * 0.15;
  first.pps = 4000.0;
  InjectDdos(trace, first, 11 + args.seed_offset);
  trace::DdosSpec second = first;
  second.start_s = dur * 0.6;
  second.duration_s = dur * 0.2;
  second.pps = 6000.0;
  InjectDdos(trace, second, 12 + args.seed_offset);

  const std::vector<std::string> names = {"high-watermark", "top-k", "p2p-detector",
                                          "counter", "flows"};
  auto result = bench::RunAtOverload(trace, names, 0.3, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, args,
                                     /*custom=*/true, /*min_rates=*/true);

  const auto seconds = bench::PerSecond(result.system->log());
  util::Table table({"t (s)", "packets", "mean srate", "drops", "backlog/cap"});
  for (size_t s = 0; s < seconds.size(); ++s) {
    table.AddRow({util::Fmt(static_cast<double>(s), 0), util::Fmt(seconds[s].packets, 0),
                  util::Fmt(seconds[s].mean_rate, 2), util::Fmt(seconds[s].dropped, 0),
                  util::Fmt(seconds[s].backlog / result.system->capacity(), 2)});
  }
  table.Print(std::cout);

  std::printf("\nPer-query accuracy over the whole run (attacks included):\n\n");
  util::Table acc({"query", "accuracy"});
  for (size_t q = 0; q < names.size(); ++q) {
    acc.AddRow({names[q], util::Fmt(result.MeanAccuracy(q), 2)});
  }
  acc.Print(std::cout);
  std::printf("total uncontrolled drops: %llu\n",
              static_cast<unsigned long long>(result.system->total_dropped()));
  std::printf(
      "\nPaper shape: during the floods the sampling rate dives but the system\n"
      "stays responsive with no uncontrolled losses and bounded errors\n"
      "(Fig 6.8).\n\n");
  return result.system->total_dropped() == 0 ? 0 : 1;
}
