// Fig. 2.2: average cost per second of the CoMo queries (CESCA-II trace).
// The paper's bar chart ranks p2p-detector and pattern-search far above the
// simple counters; this harness reports cycles/s per query and the ratio to
// the cheapest query so the ranking is directly comparable.

#include "bench/bench_common.h"

#include <algorithm>

#include "src/core/cost.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 2.2", "average cost per second of the CoMo queries (CESCA-II)");

  const auto trace = trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  struct Row {
    std::string name;
    double cycles_per_s;
  };
  std::vector<Row> rows;
  for (const auto& name : query::AllQueryNames()) {
    auto q = query::MakeQuery(name);
    trace::Batcher batcher(trace, 100'000);
    trace::Batch batch;
    double total = 0.0;
    size_t bins = 0;
    size_t in_interval = 0;
    while (batcher.Next(batch)) {
      query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
      core::WorkHint hint{q.get(), &batch.packets, 0.0};
      total += oracle->Run(core::WorkKind::kQuery, hint, [&] { q->ProcessBatch(in); });
      if (++in_interval >= q->interval_bins()) {
        q->EndInterval();
        in_interval = 0;
      }
      ++bins;
    }
    rows.push_back({name, total / (static_cast<double>(bins) * 0.1)});
  }

  double min_cost = rows.front().cycles_per_s;
  for (const auto& row : rows) {
    min_cost = std::min(min_cost, row.cycles_per_s);
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.cycles_per_s > b.cycles_per_s; });

  util::Table table({"query", "CPU cost (cycles/s)", "x cheapest"});
  for (const auto& row : rows) {
    table.AddRow({row.name, util::FmtSci(row.cycles_per_s),
                  util::Fmt(row.cycles_per_s / min_cost, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: p2p-detector and pattern-search dominate; counter /\n"
      "high-watermark / application are the cheapest (Fig. 2.2).\n\n");
  return 0;
}
