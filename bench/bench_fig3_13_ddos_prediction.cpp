// Fig. 3.13 / 3.14 / 3.15: robustness of the three predictors against a
// spoofed DDoS that goes idle every other second (§3.4.3), measured on the
// flows query whose cost explodes with the spoofed flow count. EWMA trails
// every on/off edge, SLR converges to a useless average, MLR tracks closely.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.13-3.15",
                     "prediction during an on/off spoofed DDoS (flows query)");

  auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 20.0)).Generate();
  trace::DdosSpec ddos;
  ddos.start_s = 6.0;
  ddos.duration_s = 10.0;
  ddos.pps = 2500.0;
  ddos.spoofed_sources = true;
  ddos.on_off_period_s = 1.0;  // "goes idle every other second" (§3.4.3)
  InjectDdos(trace, ddos, 7 + args.seed_offset);

  auto oracle = core::MakeOracle(args.oracle);

  struct Entry {
    const char* label;
    predict::PredictorKind kind;
  };
  const Entry predictors[] = {{"EWMA", predict::PredictorKind::kEwma},
                              {"SLR", predict::PredictorKind::kSlr},
                              {"MLR+FCBF", predict::PredictorKind::kMlr}};

  util::Table table({"predictor", "mean err (attack)", "max err (attack)", "mean err (calm)"});
  double mlr_attack = 1.0;
  double ewma_attack = 0.0;
  for (const auto& entry : predictors) {
    predict::PredictorConfig cfg;
    cfg.kind = entry.kind;
    const auto run = bench::RunPredictionExperiment(trace, "flows", cfg, *oracle, 0);
    util::RunningStats attack;
    util::RunningStats calm;
    for (size_t i = 20; i < run.actual.size(); ++i) {
      if (run.actual[i] <= 0.0) {
        continue;
      }
      const double err = util::RelativeError(run.predicted[i], run.actual[i]);
      const double t = static_cast<double>(i) / 10.0;
      if (t >= ddos.start_s && t < ddos.start_s + ddos.duration_s) {
        attack.Add(err);
      } else {
        calm.Add(err);
      }
    }
    table.AddRow({entry.label, util::Fmt(attack.mean(), 4), util::Fmt(attack.max(), 4),
                  util::Fmt(calm.mean(), 4)});
    if (entry.kind == predict::PredictorKind::kMlr) {
      mlr_attack = attack.mean();
    }
    if (entry.kind == predict::PredictorKind::kEwma) {
      ewma_attack = attack.mean();
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: MLR anticipates the surges (errors around the 10%% mark,\n"
      "4.77%% average in the thesis); EWMA oscillates behind every on/off edge\n"
      "and SLR settles near a 30%% systematic error (Figs 3.13-3.15).\n\n");
  return mlr_attack < ewma_attack ? 0 : 1;
}
