// Fig. 4.4: CPU usage after load shedding, stacked by component (CoMo core
// tasks, load shedding, prediction subsystem, queries), against the cycles
// the system estimated it would need without shedding — showing sustained
// ~2x overload handled within the capacity line.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 4.4", "CPU usage after shedding (stacked) vs estimated demand");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  const auto names = query::StandardSevenQueryNames();
  auto result = bench::RunAtOverload(trace, names, 0.5, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kEqSrates, args,
                                     /*custom=*/false, /*min_rates=*/false);

  const double capacity = result.system->capacity();
  util::Table table({"t (s)", "como", "lshed", "pred subsys", "queries", "total",
                     "predicted (no shed)", "capacity"});
  const auto& log = result.system->log();
  size_t i = 0;
  while (i < log.size()) {
    double como = 0.0, ls = 0.0, ps = 0.0, q = 0.0, pred = 0.0;
    const size_t start = i;
    for (size_t j = 0; j < 10 && i < log.size(); ++j, ++i) {
      como += log[i].como_cycles;
      ls += log[i].ls_cycles;
      ps += log[i].ps_cycles;
      q += log[i].query_cycles;
      pred += log[i].predicted_cycles;
    }
    table.AddRow({util::Fmt(static_cast<double>(start) / 10.0, 0), util::FmtSci(como, 2),
                  util::FmtSci(ls, 2), util::FmtSci(ps, 2), util::FmtSci(q, 2),
                  util::FmtSci(como + ls + ps + q, 2), util::FmtSci(pred, 2),
                  util::FmtSci(capacity * 10.0, 2)});
  }
  table.Print(std::cout);

  util::RunningStats ratio;
  for (const auto& bin : log) {
    if (bin.predicted_cycles > 0.0) {
      ratio.Add(bin.predicted_cycles / capacity);
    }
  }
  std::printf("\nmean predicted demand / capacity: %.2fx\n", ratio.mean());
  std::printf(
      "\nPaper shape: predicted (unshedded) demand runs at ~2x the capacity\n"
      "line for the whole execution while the stacked post-shedding usage\n"
      "stays at the line; overhead components are a small slice (Fig 4.4).\n\n");
  return 0;
}
