// Fig. 5.5: accuracy of the autofocus query over time at light overload
// (K = 0.2) under four systems. Its high minimum-rate constraint (0.69)
// makes it the canary: eq_srates disables it whenever traffic bursts, while
// the mmfs strategies hold its rate above the floor.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 5.5", "autofocus accuracy over time at K = 0.2");

  trace::TraceSpec spec = trace::CescaII();
  spec.burstiness = 0.7;  // variability is what trips eq_srates here
  const auto trace =
      trace::TraceGenerator(bench::Scaled(spec, args, args.quick ? 8.0 : 20.0)).Generate();
  const auto names = query::StandardNineQueryNames();
  const size_t autofocus_idx = 1;  // position in StandardNineQueryNames()

  struct System {
    std::string label;
    core::ShedderKind shedder;
    shed::StrategyKind strategy;
  };
  const std::vector<System> systems = {
      {"no_lshed", core::ShedderKind::kNoShed, shed::StrategyKind::kEqSrates},
      {"eq_srates", core::ShedderKind::kPredictive, shed::StrategyKind::kEqSrates},
      {"mmfs_cpu", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsCpu},
      {"mmfs_pkt", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsPkt},
  };

  std::vector<std::vector<double>> series;
  for (const auto& system : systems) {
    auto result = bench::RunAtOverload(trace, names, 0.2, system.shedder, system.strategy,
                                       args, /*custom=*/false, /*min_rates=*/true);
    std::vector<double> acc;
    const auto& est = result.system->query(autofocus_idx);
    const auto& ref = *result.reference[autofocus_idx];
    const size_t n = std::min(est.completed_intervals(), ref.completed_intervals());
    for (size_t i = 0; i < n; ++i) {
      acc.push_back(1.0 - est.IntervalError(ref, i));
    }
    series.push_back(std::move(acc));
  }

  std::vector<std::string> header = {"interval (s)"};
  for (const auto& system : systems) {
    header.push_back(system.label);
  }
  util::Table table(header);
  for (size_t i = 0; i < series[0].size(); ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const auto& acc : series) {
      row.push_back(i < acc.size() ? util::Fmt(acc[i], 2) : "-");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nFraction of intervals with accuracy >= 0.5 (skipping warm-up):\n\n");
  util::Table frac({"system", "stable fraction"});
  for (size_t s = 0; s < systems.size(); ++s) {
    size_t good = 0;
    size_t total = 0;
    for (size_t i = 1; i < series[s].size(); ++i) {
      ++total;
      if (series[s][i] >= 0.5) {
        ++good;
      }
    }
    frac.AddRow({systems[s].label,
                 util::Fmt(total > 0 ? static_cast<double>(good) / total : 0.0, 2)});
  }
  frac.Print(std::cout);
  std::printf(
      "\nPaper shape: eq_srates (and no_lshed) drop autofocus to zero in many\n"
      "intervals even at light overload, while mmfs_cpu/mmfs_pkt keep it\n"
      "consistently accurate (Fig 5.5).\n\n");
  return 0;
}
