// Fig. 5.4: average (left) and minimum (right) accuracy of the five load
// shedding systems as the overload level K grows from 0 to 1, running the
// representative nine-query set with its Table 5.2 rate constraints.

#include "bench/bench_common.h"
#include "src/api/run.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 5.4", "avg/min accuracy of five strategies vs overload K");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::CescaII(), args, args.quick ? 6.0 : 10.0))
                         .Generate();
  const auto names = query::StandardNineQueryNames();

  struct System {
    std::string label;
    core::ShedderKind shedder;
    shed::StrategyKind strategy;
  };
  const std::vector<System> systems = {
      {"no_lshed", core::ShedderKind::kNoShed, shed::StrategyKind::kEqSrates},
      {"reactive", core::ShedderKind::kReactive, shed::StrategyKind::kEqSrates},
      {"eq_srates", core::ShedderKind::kPredictive, shed::StrategyKind::kEqSrates},
      {"mmfs_cpu", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsCpu},
      {"mmfs_pkt", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsPkt},
  };

  // One grid cell per (K, system) pair; the whole grid fans out over the
  // pool with --threads=N (cells are independent pipeline runs, so results
  // are bit-identical to the serial sweep) and both tables print from one
  // pass. Each cell drives the api::Pipeline facade.
  const double step = args.quick ? 0.25 : 0.1;
  std::vector<double> ks;
  for (double k = 0.0; k <= 1.0 + 1e-9; k += step) {
    ks.push_back(k);
  }
  const double demand = core::MeasureMeanDemand(names, trace, args.oracle);
  const auto pool = args.MakePool();
  const auto results = api::RunPipelineGrid(
      ks.size() * systems.size(),
      [&](size_t cell) {
        return bench::SpecAtOverload(demand, names, ks[cell / systems.size()],
                                     systems[cell % systems.size()].shedder,
                                     systems[cell % systems.size()].strategy, args,
                                     /*custom_shedding=*/false, /*default_min_rates=*/true);
      },
      trace, pool.get());

  for (const bool minimum : {false, true}) {
    std::printf("\n%s accuracy:\n\n", minimum ? "Minimum" : "Average");
    std::vector<std::string> header = {"K"};
    for (const auto& system : systems) {
      header.push_back(system.label);
    }
    util::Table table(header);
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      std::vector<std::string> row = {util::Fmt(ks[ki], 2)};
      for (size_t s = 0; s < systems.size(); ++s) {
        const auto& result = *results[ki * systems.size() + s];
        row.push_back(util::Fmt(minimum ? result.MinimumAccuracy() : result.AverageAccuracy(),
                                2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nPaper shape: the mmfs variants dominate at every K > 0; mmfs_pkt gives\n"
      "the best minimum accuracy; all curves fall to ~0 at K = 1 (Fig 5.4).\n\n");
  return 0;
}
