// Fig. 6.10 / 6.11: robustness against selfish and buggy custom-shedding
// queries. A selfish p2p-detector ignores its budget; a buggy one burns an
// unrelated amount. The enforcement policy polices both while the remaining
// queries keep their accuracy.

#include "bench/bench_common.h"

#include <memory>

namespace {

using namespace shedmon;

int RunScenario(const std::string& label, bool buggy, const bench::BenchArgs& args) {
  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 10.0 : 20.0))
                         .Generate();
  const std::vector<std::string> honest = {"counter", "flows", "high-watermark"};
  const std::vector<std::string> all = {"p2p-detector", "counter", "flows",
                                        "high-watermark"};
  const double demand = core::MeasureMeanDemand(all, trace, args.oracle);

  core::SystemConfig cfg;
  cfg.cycles_per_bin = 0.55 * demand;
  cfg.shedder = core::ShedderKind::kPredictive;
  cfg.strategy = shed::StrategyKind::kMmfsPkt;
  cfg.enable_custom_shedding = true;
  cfg.enforcement.strikes_to_disable = 5;
  cfg.enforcement.penalty_bins = 30;
  core::MonitoringSystem system(cfg, core::MakeOracle(args.oracle));
  if (buggy) {
    system.AddQuery(std::make_unique<query::BuggyP2pDetectorQuery>(), {0.1, true});
  } else {
    system.AddQuery(std::make_unique<query::SelfishP2pDetectorQuery>(), {0.1, true});
  }
  for (const auto& name : honest) {
    system.AddQuery(query::MakeQuery(name), {core::DefaultMinRate(name), true});
  }

  trace::Batcher batcher(trace, 100'000);
  trace::Batch batch;
  while (batcher.Next(batch)) {
    system.ProcessBatch(batch);
  }
  system.Finish();

  auto reference = query::RunReference(all, trace);
  std::printf("\n%s:\n\n", label.c_str());
  util::Table table({"query", "accuracy", "times policed", "correction"});
  for (size_t q = 0; q < all.size(); ++q) {
    const auto row = query::SummarizeAccuracy(system.query(q), *reference[q]);
    table.AddRow({all[q] + (q == 0 ? (buggy ? " (buggy)" : " (selfish)") : ""),
                  util::Fmt(1.0 - row.mean_error, 2),
                  std::to_string(system.enforcement(q).times_policed()),
                  util::Fmt(system.enforcement(q).correction(), 2)});
  }
  table.Print(std::cout);
  std::printf("uncontrolled drops: %llu\n",
              static_cast<unsigned long long>(system.total_dropped()));

  const bool offender_policed = system.enforcement(0).times_policed() > 0;
  bool honest_ok = true;
  for (size_t q = 1; q < all.size(); ++q) {
    honest_ok = honest_ok && system.enforcement(q).times_policed() == 0;
  }
  return offender_policed && honest_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = shedmon::bench::BenchArgs::Parse(argc, argv);
  shedmon::bench::PrintHeader("Fig 6.10/6.11",
                              "policing selfish and buggy custom-shedding queries");
  const int selfish = RunScenario("Selfish p2p-detector (ignores its budget, Fig 6.10)",
                                  /*buggy=*/false, args);
  const int buggy = RunScenario("Buggy p2p-detector (cost unrelated to budget, Fig 6.11)",
                                /*buggy=*/true, args);
  std::printf(
      "\nPaper shape: the offending query is repeatedly policed (disabled for a\n"
      "penalty period) while the honest queries never are, and the system\n"
      "remains stable with no uncontrolled drops (Figs 6.10/6.11).\n\n");
  return selfish + buggy;
}
