// Table 3.4: prediction overhead broken down by phase (feature extraction /
// FCBF / MLR) relative to the total processing cycles, for the seven-query
// workload. The paper reports ~9% extraction, ~1.7% FCBF, ~0.2% MLR.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 3.4", "prediction overhead by phase (7-query workload)");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  double extraction = 0.0;
  double fit = 0.0;
  double queries = 0.0;
  bool first = true;
  for (const auto& name : bench::SevenQueries()) {
    predict::PredictorConfig cfg;
    cfg.kind = predict::PredictorKind::kMlr;
    const auto run = bench::RunPredictionExperiment(trace, name, cfg, *oracle);
    // The prediction-stage extraction is shared across queries on the same
    // stream (§3.4.4): count it once.
    if (first) {
      extraction = run.extraction_cycles;
      first = false;
    }
    fit += run.fit_cycles;
    queries += run.query_cycles;
  }
  const double total = extraction + fit + queries;

  util::Table table({"prediction phase", "overhead"});
  table.AddRow({"feature extraction", util::FmtPercent(extraction / total, 3)});
  table.AddRow({"FCBF + MLR (per-query fits)", util::FmtPercent(fit / total, 3)});
  table.AddRow({"TOTAL", util::FmtPercent((extraction + fit) / total, 3)});
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: feature extraction is the bulk of the prediction cost and\n"
      "the total overhead stays around ten percent of the system's cycles\n"
      "(Table 3.4: 9.07%% + 1.70%% + 0.20%% = 10.97%%).\n\n");
  return (extraction + fit) / total < 0.25 ? 0 : 1;
}
