// Fig. 3.7 / 3.8 / 3.12: MLR+FCBF prediction error over time across the
// seven-query set on the four datasets (average, maximum and 95th-percentile
// series), demonstrating quick convergence and low steady-state error.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 3.7/3.8/3.12",
                     "MLR+FCBF prediction error over time on four traces");

  std::vector<trace::TraceSpec> specs = {trace::CescaI(), trace::CescaII(), trace::Abilene(),
                                         trace::Cenic()};
  auto oracle = core::MakeOracle(args.oracle);

  for (auto& spec : specs) {
    const auto trace =
        trace::TraceGenerator(bench::Scaled(spec, args, args.quick ? 6.0 : 15.0)).Generate();

    // Per-batch error across all seven queries.
    std::vector<std::vector<double>> per_query;
    for (const auto& name : bench::SevenQueries()) {
      predict::PredictorConfig cfg;
      cfg.kind = predict::PredictorKind::kMlr;
      const auto run = bench::RunPredictionExperiment(trace, name, cfg, *oracle, 0);
      std::vector<double> errors;
      for (size_t i = 0; i < run.actual.size(); ++i) {
        errors.push_back(run.actual[i] > 0.0
                             ? util::RelativeError(run.predicted[i], run.actual[i])
                             : 0.0);
      }
      per_query.push_back(std::move(errors));
    }

    std::printf("\n%s:\n\n", spec.name.c_str());
    util::Table table({"t (s)", "avg error", "max error", "95th pct"});
    const size_t bins = per_query.front().size();
    util::RunningStats overall;
    for (size_t start = 10; start + 10 <= bins; start += 10) {
      std::vector<double> window;
      for (const auto& series : per_query) {
        for (size_t i = start; i < start + 10; ++i) {
          window.push_back(series[i]);
          overall.Add(series[i]);
        }
      }
      util::RunningStats s;
      for (const double e : window) {
        s.Add(e);
      }
      table.AddRow({util::Fmt(static_cast<double>(start) / 10.0, 0), util::Fmt(s.mean(), 4),
                    util::Fmt(s.max(), 4), util::Fmt(util::Percentile(window, 0.95), 4)});
    }
    table.Print(std::cout);
    std::printf("overall mean error: %s\n", util::Fmt(overall.mean(), 4).c_str());
  }
  std::printf(
      "\nPaper shape: average error settles in the low percent range on every\n"
      "trace with occasional maxima an order of magnitude higher (Figs 3.7/3.8);\n"
      "the 95th percentile stays close to the mean (Fig 3.12).\n\n");
  return 0;
}
