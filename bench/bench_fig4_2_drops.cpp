// Fig. 4.2: link load, uncontrolled capture drops ("DAG drops") and packets
// deliberately unsampled over time, for the predictive / original / reactive
// systems. The headline Ch. 4 result: the predictive system never loses a
// packet uncontrolled, the baselines drop continuously.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 4.2", "link load and packet drops per load-shedding method");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  const auto names = query::StandardSevenQueryNames();

  for (const auto shedder : {core::ShedderKind::kPredictive, core::ShedderKind::kNoShed,
                             core::ShedderKind::kReactive}) {
    auto result = bench::RunAtOverload(trace, names, 0.5, shedder,
                                       shed::StrategyKind::kEqSrates, args,
                                       /*custom=*/false, /*min_rates=*/false,
                                       /*buffer_bins=*/2.0);
    const auto seconds = bench::PerSecond(result.system->log());
    std::printf("\n(%s)\n\n", bench::ShedderName(shedder).c_str());
    util::Table table({"t (s)", "packets", "DAG drops", "unsampled"});
    for (size_t s = 0; s < seconds.size(); ++s) {
      table.AddRow({util::Fmt(static_cast<double>(s), 0), util::Fmt(seconds[s].packets, 0),
                    util::Fmt(seconds[s].dropped, 0), util::Fmt(seconds[s].unsampled, 0)});
    }
    table.Print(std::cout);
    std::printf("totals: %llu packets, %llu uncontrolled drops (%.1f%%)\n",
                static_cast<unsigned long long>(result.system->total_packets()),
                static_cast<unsigned long long>(result.system->total_dropped()),
                100.0 * static_cast<double>(result.system->total_dropped()) /
                    static_cast<double>(result.system->total_packets()));
  }
  std::printf(
      "\nPaper shape: zero uncontrolled drops for the predictive system during\n"
      "the whole run (Fig 4.2a); the original system drops packets at the\n"
      "capture card throughout (Fig 4.2b). The reactive system's drops\n"
      "(Fig 4.2c) depend on burst scale vs buffer: shrink the buffer or\n"
      "deepen the bursts and they reappear.\n\n");
  return 0;
}
