// Table 4.1 / Fig. 4.3: per-query accuracy error of the three load-shedding
// methods at 2x overload. The predictive system keeps the error of every
// scalable query in the low percent range; the original system's results are
// wrecked by uncontrolled loss; reactive sits in between.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 4.1 / Fig 4.3", "accuracy error per query per method (K = 0.5)");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  // The table's rows: queries whose unsampled output can be recovered.
  const std::vector<std::string> names = {"application", "counter", "flows",
                                          "high-watermark", "top-k"};

  struct MethodRun {
    std::string label;
    core::RunResult result;
  };
  std::vector<MethodRun> runs;
  for (const auto shedder : {core::ShedderKind::kPredictive, core::ShedderKind::kNoShed,
                             core::ShedderKind::kReactive}) {
    runs.push_back({bench::ShedderName(shedder),
                    bench::RunAtOverload(trace, names, 0.5, shedder,
                                         shed::StrategyKind::kEqSrates, args,
                                         /*custom=*/false, /*min_rates=*/false,
                                         /*buffer_bins=*/2.0)});
  }

  util::Table table({"query", "predictive", "original", "reactive"});
  for (size_t q = 0; q < names.size(); ++q) {
    std::vector<std::string> row = {names[q]};
    for (auto& run : runs) {
      const auto acc = run.result.Accuracy(q);
      row.push_back(util::FmtPercent(acc.mean_error, 2) + " ±" +
                    util::Fmt(acc.stdev_error * 100.0, 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nFig 4.3 — average error across queries:\n\n");
  util::Table avg({"method", "avg error"});
  double pred_err = 0.0;
  double orig_err = 0.0;
  for (auto& run : runs) {
    util::RunningStats err;
    for (size_t q = 0; q < names.size(); ++q) {
      err.Add(run.result.Accuracy(q).mean_error);
    }
    avg.AddRow({run.label, util::FmtPercent(err.mean(), 2)});
    if (run.label.rfind("predictive", 0) == 0) {
      pred_err = err.mean();
    }
    if (run.label.rfind("original", 0) == 0) {
      orig_err = err.mean();
    }
  }
  avg.Print(std::cout);
  std::printf(
      "\nPaper shape: predictive ~1-3%% per query; original tens of percent;\n"
      "reactive intermediate (Table 4.1, Fig 4.3).\n\n");
  return pred_err < orig_err ? 0 : 1;
}
