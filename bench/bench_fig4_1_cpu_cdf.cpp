// Fig. 4.1: CDF of the CPU cycles consumed per batch under the predictive,
// original (no shedding) and reactive systems at ~2x overload. The
// predictive system's service time concentrates just under the per-batch
// budget; the alternatives are wildly variable and lose entire batches
// (service time zero).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 4.1", "CDF of per-batch CPU usage for three systems (K = 0.5)");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaI(), args, 20.0)).Generate();
  const auto names = query::StandardSevenQueryNames();

  struct Config {
    core::ShedderKind shedder;
  };
  const Config configs[] = {{core::ShedderKind::kPredictive},
                            {core::ShedderKind::kNoShed},
                            {core::ShedderKind::kReactive}};

  std::vector<std::vector<double>> samples;
  std::vector<std::string> labels;
  double capacity = 0.0;
  for (const auto& config : configs) {
    auto result = bench::RunAtOverload(trace, names, 0.5, config.shedder,
                                       shed::StrategyKind::kEqSrates, args,
                                       /*custom=*/false, /*min_rates=*/false,
                                       /*buffer_bins=*/2.0);
    capacity = result.system->capacity();
    std::vector<double> usage;
    size_t zero_bins = 0;
    for (const auto& bin : result.system->log()) {
      const double spent = bin.query_cycles + bin.ps_cycles + bin.ls_cycles;
      usage.push_back(spent);
      if (bin.batch_dropped) {
        ++zero_bins;
      }
    }
    std::printf("%-22s: batches fully lost (service time 0): %zu / %zu\n",
                bench::ShedderName(config.shedder).c_str(), zero_bins, usage.size());
    samples.push_back(std::move(usage));
    labels.push_back(bench::ShedderName(config.shedder));
  }

  std::printf("\nCDF of per-batch cycles (budget per batch = %s):\n\n",
              util::FmtSci(capacity, 2).c_str());
  util::Table table({"cycles/batch", labels[0], labels[1], labels[2]});
  // Evaluate each system's empirical CDF on a common grid.
  double max_x = capacity * 3.0;
  for (int step = 0; step <= 12; ++step) {
    const double x = max_x * static_cast<double>(step) / 12.0;
    std::vector<std::string> row = {util::FmtSci(x, 2)};
    for (const auto& usage : samples) {
      size_t below = 0;
      for (const double u : usage) {
        if (u <= x) {
          ++below;
        }
      }
      row.push_back(util::Fmt(static_cast<double>(below) / usage.size(), 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: predictive mass concentrated just below the per-batch\n"
      "budget (rarely under/over-sampling); original and reactive exceed the\n"
      "budget with probability > 30%% and lose whole batches (Fig 4.1).\n\n");
  return 0;
}
