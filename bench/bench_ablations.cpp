// Ablation study for the design choices the thesis motivates but does not
// isolate experimentally. Each ablation disables one mechanism of Alg. 1 /
// Ch. 6 and reports what it buys:
//
//   A1  prediction-error safety margin   (line 8's  pred * (1 + error_hat))
//   A2  buffer discovery                 (§4.1's rtthresh slow-start slack)
//   A3  post-sampling feature re-extraction (line 12's history consistency)
//   A4  measurement scrubbing            (§3.2.4, corrupted TSC readings)
//   A5  cold-start probing               (warm-up bootstrap rate)

#include "bench/bench_common.h"

#include "src/predict/predictors.h"
#include "src/util/rng.h"

namespace {

using namespace shedmon;

struct Outcome {
  double avg_accuracy = 0.0;
  double drops_pct = 0.0;
  double mean_utilization = 0.0;  // spent / capacity
  double overshoot_bins_pct = 0.0;
};

Outcome Evaluate(const core::RunResult& result) {
  Outcome o;
  o.avg_accuracy = result.AverageAccuracy();
  o.drops_pct = 100.0 * static_cast<double>(result.system->total_dropped()) /
                std::max<double>(1.0, static_cast<double>(result.system->total_packets()));
  util::RunningStats util_stats;
  size_t overshoot = 0;
  const double cap = result.system->capacity();
  for (const auto& bin : result.system->log()) {
    const double spent = bin.query_cycles + bin.ps_cycles + bin.ls_cycles + bin.como_cycles;
    util_stats.Add(spent / cap);
    if (spent > cap * 1.01) {
      ++overshoot;
    }
  }
  o.mean_utilization = util_stats.mean();
  o.overshoot_bins_pct =
      100.0 * static_cast<double>(overshoot) / std::max<size_t>(1, result.system->log().size());
  return o;
}

core::RunResult RunVariant(const trace::Trace& trace, const std::vector<std::string>& names,
                           double k, const bench::BenchArgs& args,
                           const std::function<void(core::SystemConfig&)>& tweak) {
  const double demand = core::MeasureMeanDemand(names, trace, args.oracle);
  core::RunSpec spec;
  spec.system.shedder = core::ShedderKind::kPredictive;
  spec.system.strategy = shed::StrategyKind::kMmfsPkt;
  spec.system.cycles_per_bin = std::max(1.0, demand * (1.0 - k));
  spec.oracle = args.oracle;
  spec.query_names = names;
  spec.use_default_min_rates = false;
  tweak(spec.system);
  return RunSystemOnTrace(spec, trace);
}

void Report(util::Table& table, const std::string& label, const Outcome& o) {
  table.AddRow({label, util::Fmt(o.avg_accuracy, 3), util::Fmt(o.drops_pct, 2) + "%",
                util::Fmt(o.mean_utilization, 2), util::Fmt(o.overshoot_bins_pct, 1) + "%"});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Ablations", "what each load-shedding mechanism buys");

  trace::TraceSpec spec = trace::CescaII();
  spec.burstiness = 0.7;  // mechanisms matter most under variable load
  auto trace = trace::TraceGenerator(
                   bench::Scaled(spec, args, args.quick ? 8.0 : 20.0))
                   .Generate();
  trace::DdosSpec ddos;
  ddos.start_s = trace.spec.duration_s * 0.5;
  ddos.duration_s = trace.spec.duration_s * 0.15;
  ddos.pps = 2000.0;
  InjectDdos(trace, ddos, 5 + args.seed_offset);

  const std::vector<std::string> names = {"counter", "flows", "application", "top-k"};

  util::Table table({"variant", "avg accuracy", "uncontrolled drops", "mean utilization",
                     "bins over budget"});

  Report(table, "full system (baseline)",
         Evaluate(RunVariant(trace, names, 0.5, args, [](core::SystemConfig&) {})));

  // A1: no prediction-error safety margin — demands are never inflated.
  Report(table, "A1: no error safety margin",
         Evaluate(RunVariant(trace, names, 0.5, args,
                             [](core::SystemConfig& cfg) { cfg.error_margin_enabled = false; })));

  // A2: no buffer discovery — the system never borrows buffer slack.
  Report(table, "A2: no rtthresh slack",
         Evaluate(RunVariant(trace, names, 0.5, args,
                             [](core::SystemConfig& cfg) { cfg.rtthresh_enabled = false; })));

  table.Print(std::cout);
  std::printf(
      "\nReading: the error margin (A1) costs a little accuracy through extra\n"
      "shedding but guards against underprediction; rtthresh (A2) raises mean\n"
      "utilization by borrowing buffer slack, at the price of rate variance.\n");

  // A5: cold-start probing, exposed by the scenario that needs it — an
  // expensive unknown query joining a tightly provisioned running system
  // (Fig. 6.9's arrival, before any cost model exists for it).
  std::printf("\nA5: cold-start probe when an expensive query arrives mid-run:\n\n");
  {
    util::Table t({"variant", "uncontrolled drops", "max backlog/buffer"});
    for (const bool probe : {true, false}) {
      const std::vector<std::string> resident = {"counter", "flows"};
      const double demand = core::MeasureMeanDemand(resident, trace, args.oracle);
      core::SystemConfig cfg;
      cfg.cycles_per_bin = 0.6 * demand;  // already overloaded before the arrival
      cfg.shedder = core::ShedderKind::kPredictive;
      cfg.strategy = shed::StrategyKind::kMmfsPkt;
      if (!probe) {
        cfg.warmup_observations = 0;
        cfg.bootstrap_rate = 1.0;
      }
      core::MonitoringSystem system(cfg, core::MakeOracle(args.oracle));
      system.AddQuery(query::MakeQuery("counter"));
      system.AddQuery(query::MakeQuery("flows"));
      trace::Batcher batcher(trace, 100'000);
      trace::Batch batch;
      size_t bin = 0;
      double max_backlog = 0.0;
      while (batcher.Next(batch)) {
        if (bin == 50) {
          system.AddQuery(query::MakeQuery("p2p-detector"));
        }
        system.ProcessBatch(batch);
        max_backlog = std::max(max_backlog, system.log().back().backlog_cycles);
        ++bin;
      }
      system.Finish();
      t.AddRow({probe ? "probe on (baseline)" : "probe off (ablated)",
                std::to_string(system.total_dropped()),
                util::Fmt(max_backlog / (2.0 * system.capacity()), 2)});
    }
    t.Print(std::cout);
  }

  // A3: post-sampling re-extraction — isolated on the predictor itself:
  // train MLR with features of the *unsampled* batch while the measured cost
  // is that of the sampled one (the inconsistency the re-extraction avoids).
  std::printf("\nA3: history consistency (features of processed vs offered batch):\n\n");
  {
    util::Rng rng(17 + args.seed_offset);
    predict::MlrPredictor consistent;  // (sampled features, sampled cost)
    predict::MlrPredictor mismatched;  // (full features, sampled cost)
    util::RunningStats err_consistent;
    util::RunningStats err_mismatched;
    for (int i = 0; i < 400; ++i) {
      const double pkts = 300.0 + rng.NextDouble() * 400.0;
      const double rate = 0.2 + 0.6 * rng.NextDouble();
      features::FeatureVector full{};
      full[features::kFeatPackets] = pkts;
      full[features::kFeatBytes] = pkts * 600.0;
      features::FeatureVector sampled = full;
      sampled[features::kFeatPackets] *= rate;
      sampled[features::kFeatBytes] *= rate;
      const double full_cost = 50.0 * pkts;
      const double sampled_cost = full_cost * rate;
      if (i > 100) {
        err_consistent.Add(util::RelativeError(consistent.Predict(full), full_cost));
        err_mismatched.Add(util::RelativeError(mismatched.Predict(full), full_cost));
      }
      consistent.Observe(sampled, sampled_cost);
      mismatched.Observe(full, sampled_cost);
    }
    util::Table t({"history variant", "full-batch prediction error"});
    t.AddRow({"re-extracted (paper, Alg. 1 line 12)", util::Fmt(err_consistent.mean(), 3)});
    t.AddRow({"offered-batch features (ablated)", util::Fmt(err_mismatched.mean(), 3)});
    t.Print(std::cout);
  }

  // A4: measurement scrubbing under injected corruption.
  std::printf("\nA4: measurement scrubbing under 5%% corrupted readings:\n\n");
  {
    util::Rng rng(23 + args.seed_offset);
    predict::MlrPredictor::Config scrub_on;
    predict::MlrPredictor::Config scrub_off = scrub_on;
    scrub_off.scrub_factor = 0.0;
    predict::MlrPredictor with_scrub(scrub_on);
    predict::MlrPredictor without_scrub(scrub_off);
    util::RunningStats err_on;
    util::RunningStats err_off;
    for (int i = 0; i < 400; ++i) {
      const double pkts = 300.0 + rng.NextDouble() * 400.0;
      features::FeatureVector f{};
      f[features::kFeatPackets] = pkts;
      f[features::kFeatBytes] = pkts * 600.0;
      const double truth = 45.0 * pkts;
      // 5% of readings hit by a "context switch": 20x the real cost.
      const double measured = rng.NextDouble() < 0.05 ? truth * 20.0 : truth;
      if (i > 100) {
        err_on.Add(util::RelativeError(with_scrub.Predict(f), truth));
        err_off.Add(util::RelativeError(without_scrub.Predict(f), truth));
      }
      with_scrub.Observe(f, measured);
      without_scrub.Observe(f, measured);
    }
    util::Table t({"scrubbing", "prediction error"});
    t.AddRow({"on (paper, §3.2.4)", util::Fmt(err_on.mean(), 3)});
    t.AddRow({"off (ablated)", util::Fmt(err_off.mean(), 3)});
    t.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}
