// Fig. 5.2: the Fig. 5.1 comparison validated on the real pipeline with
// 1 trace query and 10 counter queries processing generated traffic.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 5.2",
                     "mmfs_pkt - mmfs_cpu accuracy with 1 trace + 10 counter queries (real)");

  const auto trace_data =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, args.quick ? 5.0 : 8.0))
          .Generate();
  std::vector<std::string> names = {"trace"};
  for (int i = 0; i < 10; ++i) {
    names.push_back("counter");
  }

  const double step = args.quick ? 0.5 : 0.25;
  for (const bool minimum : {false, true}) {
    std::printf("\n%s accuracy difference (mmfs_pkt - mmfs_cpu):\n\n",
                minimum ? "Minimum" : "Average");
    std::vector<std::string> header = {"mq \\ K"};
    for (double k = 0.0; k <= 1.0 + 1e-9; k += step) {
      header.push_back(util::Fmt(k, 2));
    }
    util::Table table(header);
    for (double mq = 0.0; mq <= 1.0 + 1e-9; mq += step) {
      std::vector<std::string> row = {util::Fmt(mq, 2)};
      for (double k = 0.0; k <= 1.0 + 1e-9; k += step) {
        double values[2];
        int idx = 0;
        for (const auto strategy :
             {shed::StrategyKind::kMmfsCpu, shed::StrategyKind::kMmfsPkt}) {
          core::RunSpec spec;
          spec.system.shedder = core::ShedderKind::kPredictive;
          spec.system.strategy = strategy;
          const double demand = core::MeasureMeanDemand(names, trace_data, args.oracle);
          spec.system.cycles_per_bin = std::max(1.0, demand * (1.0 - k));
          spec.oracle = args.oracle;
          spec.query_names = names;
          spec.use_default_min_rates = false;
          spec.query_configs.assign(names.size(), core::QueryConfig{mq, true});
          auto result = RunSystemOnTrace(spec, trace_data);
          // trace accuracy = processed fraction; counter accuracy = 1 - err.
          double avg = 0.0;
          double min_acc = 1.0;
          for (size_t q = 0; q < names.size(); ++q) {
            const double acc = result.MeanAccuracy(q);
            avg += acc;
            min_acc = std::min(min_acc, acc);
          }
          avg /= static_cast<double>(names.size());
          values[idx++] = minimum ? min_acc : avg;
        }
        row.push_back(util::Fmt(values[1] - values[0], 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nPaper shape: resembles the simulation — flat average difference,\n"
      "positive minimum-accuracy ridge for mmfs_pkt (Fig 5.2).\n\n");
  return 0;
}
