// §5.3 (Theorem 5.1): the resource-allocation game has a single Nash
// equilibrium at a_q = C/|Q|. This harness verifies the equilibrium and the
// two deviation directions numerically for several player counts, and shows
// the Aurora-style contrast where over-demanding is punished with zero.

#include "bench/bench_common.h"

#include "src/game/game.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  (void)args;
  bench::PrintHeader("Sec 5.3", "Nash equilibrium of the allocation game at a* = C/|Q|");

  const double capacity = 100.0;
  util::Table table({"|Q|", "share kind", "u(a*)", "is NE", "u(deviate +5%)",
                     "u(deviate -50%)"});
  bool all_ok = true;
  for (const size_t n : {2, 3, 5, 8, 11}) {
    for (const auto share : {shed::StrategyKind::kMmfsCpu, shed::StrategyKind::kMmfsPkt}) {
      game::GameConfig cfg;
      cfg.capacity = capacity;
      cfg.full_demand.assign(n, capacity * 1e6);
      cfg.share = share;
      const double fair = capacity / static_cast<double>(n);
      std::vector<double> actions(n, fair);
      const double base = game::Payoff(cfg, actions, 0);
      const bool is_ne = game::IsNashEquilibrium(cfg, actions, 401, 1e-6);
      all_ok = all_ok && is_ne;
      std::vector<double> up = actions;
      up[0] = fair * 1.05;
      std::vector<double> down = actions;
      down[0] = fair * 0.5;
      table.AddRow({std::to_string(n),
                    share == shed::StrategyKind::kMmfsCpu ? "cpu" : "pkt",
                    util::Fmt(base, 2), is_ne ? "yes" : "NO",
                    util::Fmt(game::Payoff(cfg, up, 0), 2),
                    util::Fmt(game::Payoff(cfg, down, 0), 2)});
    }
  }
  table.Print(std::cout);

  std::printf("\nNon-equilibrium profiles are detected as such:\n\n");
  game::GameConfig cfg;
  cfg.capacity = capacity;
  cfg.full_demand.assign(4, capacity * 1e6);
  util::Table neg({"profile", "is NE"});
  neg.AddRow({"(10,10,10,10)",
              game::IsNashEquilibrium(cfg, {10, 10, 10, 10}, 401, 1e-6) ? "yes" : "no"});
  neg.AddRow({"(40,30,20,10)",
              game::IsNashEquilibrium(cfg, {40, 30, 20, 10}, 401, 1e-6) ? "yes" : "no"});
  neg.AddRow({"(25,25,25,25)",
              game::IsNashEquilibrium(cfg, {25, 25, 25, 25}, 401, 1e-6) ? "yes" : "no"});
  neg.Print(std::cout);

  std::printf(
      "\nAurora-style contrast (§5.3): demanding everything against any other\n"
      "demand yields zero here: u((C, 10), player 0) = %.2f\n",
      game::Payoff(cfg, {100.0, 10.0, 0.0, 0.0}, 0));
  std::printf(
      "\nPaper shape: a* = C/|Q| is an equilibrium for every |Q| and share\n"
      "kind; any upward deviation is disabled (payoff 0), any downward\n"
      "deviation earns strictly less (Theorem 5.1).\n\n");
  return all_ok ? 0 : 1;
}
