#pragma once

// Shared helpers for the bench harness. Every bench binary regenerates one
// table or figure of the thesis (see DESIGN.md §5) and prints the same rows
// or series the paper reports, scaled to seconds of synthetic traffic.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/exec/parallel_trace_runner.h"
#include "src/exec/thread_pool.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace shedmon::bench {

// Common command-line knobs: --quick shrinks traces further; --seed=N
// perturbs every generator seed; --oracle=measured uses real rdtsc cycles;
// --threads=N fans a driver's independent grid cells (whole system runs)
// over one exec::ThreadPool — results are bit-identical to --threads=0
// under the model oracle, only wall-clock changes. Each cell's system stays
// serial inside (SystemConfig::num_threads is not set from this flag: grid
// and per-query parallelism would multiply thread counts). --shards=N flips
// drivers that support it to the other parallelism axis: cells run
// sequentially but each cell's system runs num_threads=--threads workers
// with intra-query sharding up to N — still bit-identical under the model
// oracle.
struct BenchArgs {
  bool quick = false;
  uint64_t seed_offset = 0;
  core::OracleKind oracle = core::OracleKind::kModel;
  size_t threads = 0;
  size_t shards = 0;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed_offset = std::stoull(arg.substr(7));
      } else if (arg.rfind("--threads=", 0) == 0) {
        args.threads = std::stoull(arg.substr(10));
      } else if (arg.rfind("--shards=", 0) == 0) {
        args.shards = std::stoull(arg.substr(9));
      } else if (arg == "--oracle=measured") {
        args.oracle = core::OracleKind::kMeasured;
      } else if (arg == "--oracle=model") {
        args.oracle = core::OracleKind::kModel;
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--quick] [--seed=N] [--oracle=model|measured] [--threads=N] "
            "[--shards=N]\n",
            argv[0]);
        std::exit(0);
      }
    }
    return args;
  }

  // Applies the --shards axis to one cell's system config: per-query worker
  // parallelism (from --threads) with intra-query sharding on top. Callers
  // that use this run their grid cells without a shared pool (see above).
  void ApplyIntraQuerySharding(core::RunSpec& spec) const {
    if (shards == 0) {
      return;
    }
    spec.system.num_threads = threads;
    spec.system.max_shards_per_query = shards;
  }

  // Pool shared by a driver's grid cells; null (serial) when --threads=0.
  std::unique_ptr<exec::ThreadPool> MakePool() const {
    return threads > 0 ? std::make_unique<exec::ThreadPool>(threads) : nullptr;
  }
};

inline void PrintHeader(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

// Scales a preset down for --quick runs and applies the seed offset.
inline trace::TraceSpec Scaled(trace::TraceSpec spec, const BenchArgs& args,
                               double duration_s = 0.0) {
  if (duration_s > 0.0) {
    spec.duration_s = duration_s;
  }
  if (args.quick) {
    spec.duration_s = std::min(spec.duration_s, 6.0);
  }
  spec.seed += args.seed_offset;
  return spec;
}

// Builds the RunSpec for one system configuration at overload factor K
// (capacity = mean unshedded demand * (1 - K), §5.4). `demand` is the
// precomputed MeasureMeanDemand of the query set, so grid drivers measure it
// once and fan the cells over exec::ParallelTraceRunner. `buffer_bins` > 0
// overrides the capture-buffer size; the Ch. 4 method comparisons pass 2.0
// to reproduce the thesis's 200 ms buffer emulation.
inline core::RunSpec SpecAtOverload(double demand, const std::vector<std::string>& names,
                                    double k, core::ShedderKind shedder,
                                    shed::StrategyKind strategy, const BenchArgs& args,
                                    bool custom_shedding = false,
                                    bool default_min_rates = true, double buffer_bins = 0.0) {
  core::RunSpec spec;
  spec.system.shedder = shedder;
  spec.system.strategy = strategy;
  spec.system.cycles_per_bin = std::max(1.0, demand * (1.0 - k));
  spec.system.enable_custom_shedding = custom_shedding;
  if (buffer_bins > 0.0) {
    spec.system.buffer_bins = buffer_bins;
  }
  spec.oracle = args.oracle;
  spec.query_names = names;
  spec.use_default_min_rates = default_min_rates;
  return spec;
}

// Runs one system configuration at overload factor K over `trace`.
inline core::RunResult RunAtOverload(const trace::Trace& trace,
                                     const std::vector<std::string>& names, double k,
                                     core::ShedderKind shedder, shed::StrategyKind strategy,
                                     const BenchArgs& args, bool custom_shedding = false,
                                     bool default_min_rates = true,
                                     double buffer_bins = 0.0) {
  const double demand = core::MeasureMeanDemand(names, trace, args.oracle);
  return core::RunSystemOnTrace(SpecAtOverload(demand, names, k, shedder, strategy, args,
                                               custom_shedding, default_min_rates,
                                               buffer_bins),
                                trace);
}

// Per-second aggregation of bin logs for time-series figures.
struct SecondStats {
  double packets = 0.0;
  double dropped = 0.0;
  double unsampled = 0.0;
  double query_cycles = 0.0;
  double predicted = 0.0;
  double avail = 0.0;
  double backlog = 0.0;
  double mean_rate = 1.0;
};

inline std::vector<SecondStats> PerSecond(const std::vector<core::BinLog>& log) {
  std::vector<SecondStats> out;
  size_t i = 0;
  while (i < log.size()) {
    SecondStats s;
    util::RunningStats rate;
    for (size_t j = 0; j < 10 && i < log.size(); ++j, ++i) {
      const auto& bin = log[i];
      s.packets += static_cast<double>(bin.packets_in);
      s.dropped += static_cast<double>(bin.packets_dropped);
      s.unsampled += bin.packets_unsampled;
      s.query_cycles += bin.query_cycles;
      s.predicted += bin.predicted_cycles;
      s.avail += bin.avail_cycles;
      s.backlog = bin.backlog_cycles;
      double mean_r = 0.0;
      for (const double r : bin.rate) {
        mean_r += r;
      }
      if (!bin.rate.empty()) {
        rate.Add(mean_r / static_cast<double>(bin.rate.size()));
      }
    }
    s.mean_rate = rate.count() > 0 ? rate.mean() : 1.0;
    out.push_back(s);
  }
  return out;
}

inline std::string ShedderName(core::ShedderKind kind) {
  switch (kind) {
    case core::ShedderKind::kNoShed:
      return "original (no lshed)";
    case core::ShedderKind::kReactive:
      return "reactive";
    case core::ShedderKind::kPredictive:
      return "predictive";
  }
  return "?";
}

}  // namespace shedmon::bench
