#pragma once

// Shared helpers for the bench harness. Every bench binary regenerates one
// table or figure of the thesis (see DESIGN.md §5) and prints the same rows
// or series the paper reports, scaled to seconds of synthetic traffic.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/query/queries.h"
#include "src/trace/anomaly.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/stats.h"
#include "src/util/table.h"

namespace shedmon::bench {

// Common command-line knobs: --quick shrinks traces further; --seed=N
// perturbs every generator seed; --oracle=measured uses real rdtsc cycles.
struct BenchArgs {
  bool quick = false;
  uint64_t seed_offset = 0;
  core::OracleKind oracle = core::OracleKind::kModel;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg.rfind("--seed=", 0) == 0) {
        args.seed_offset = std::stoull(arg.substr(7));
      } else if (arg == "--oracle=measured") {
        args.oracle = core::OracleKind::kMeasured;
      } else if (arg == "--oracle=model") {
        args.oracle = core::OracleKind::kModel;
      } else if (arg == "--help" || arg == "-h") {
        std::printf("usage: %s [--quick] [--seed=N] [--oracle=model|measured]\n", argv[0]);
        std::exit(0);
      }
    }
    return args;
  }
};

inline void PrintHeader(const std::string& id, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("==============================================================\n");
}

// Scales a preset down for --quick runs and applies the seed offset.
inline trace::TraceSpec Scaled(trace::TraceSpec spec, const BenchArgs& args,
                               double duration_s = 0.0) {
  if (duration_s > 0.0) {
    spec.duration_s = duration_s;
  }
  if (args.quick) {
    spec.duration_s = std::min(spec.duration_s, 6.0);
  }
  spec.seed += args.seed_offset;
  return spec;
}

// Runs one system configuration at overload factor K over `trace` with the
// given queries (capacity = mean unshedded demand * (1 - K), §5.4).
// `buffer_bins` > 0 overrides the capture-buffer size; the Ch. 4 method
// comparisons pass 2.0 to reproduce the thesis's 200 ms buffer emulation.
inline core::RunResult RunAtOverload(const trace::Trace& trace,
                                     const std::vector<std::string>& names, double k,
                                     core::ShedderKind shedder, shed::StrategyKind strategy,
                                     const BenchArgs& args, bool custom_shedding = false,
                                     bool default_min_rates = true,
                                     double buffer_bins = 0.0) {
  const double demand = core::MeasureMeanDemand(names, trace, args.oracle);
  core::RunSpec spec;
  spec.system.shedder = shedder;
  spec.system.strategy = strategy;
  spec.system.cycles_per_bin = std::max(1.0, demand * (1.0 - k));
  spec.system.enable_custom_shedding = custom_shedding;
  if (buffer_bins > 0.0) {
    spec.system.buffer_bins = buffer_bins;
  }
  spec.oracle = args.oracle;
  spec.query_names = names;
  spec.use_default_min_rates = default_min_rates;
  return core::RunSystemOnTrace(spec, trace);
}

// Per-second aggregation of bin logs for time-series figures.
struct SecondStats {
  double packets = 0.0;
  double dropped = 0.0;
  double unsampled = 0.0;
  double query_cycles = 0.0;
  double predicted = 0.0;
  double avail = 0.0;
  double backlog = 0.0;
  double mean_rate = 1.0;
};

inline std::vector<SecondStats> PerSecond(const std::vector<core::BinLog>& log) {
  std::vector<SecondStats> out;
  size_t i = 0;
  while (i < log.size()) {
    SecondStats s;
    util::RunningStats rate;
    for (size_t j = 0; j < 10 && i < log.size(); ++j, ++i) {
      const auto& bin = log[i];
      s.packets += static_cast<double>(bin.packets_in);
      s.dropped += static_cast<double>(bin.packets_dropped);
      s.unsampled += bin.packets_unsampled;
      s.query_cycles += bin.query_cycles;
      s.predicted += bin.predicted_cycles;
      s.avail += bin.avail_cycles;
      s.backlog = bin.backlog_cycles;
      double mean_r = 0.0;
      for (const double r : bin.rate) {
        mean_r += r;
      }
      if (!bin.rate.empty()) {
        rate.Add(mean_r / static_cast<double>(bin.rate.size()));
      }
    }
    s.mean_rate = rate.count() > 0 ? rate.mean() : 1.0;
    out.push_back(s);
  }
  return out;
}

inline std::string ShedderName(core::ShedderKind kind) {
  switch (kind) {
    case core::ShedderKind::kNoShed:
      return "original (no lshed)";
    case core::ShedderKind::kReactive:
      return "reactive";
    case core::ShedderKind::kPredictive:
      return "predictive";
  }
  return "?";
}

}  // namespace shedmon::bench
