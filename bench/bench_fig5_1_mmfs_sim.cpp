// Fig. 5.1: difference in average (left) and minimum (right) accuracy
// between mmfs_pkt and mmfs_cpu when running 1 heavy and 10 light queries in
// a simulated environment, over the (minimum sampling rate, overload level)
// grid. Positive values show the superiority of packet-access fairness.

#include "bench/bench_common.h"

#include "src/game/game.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 5.1",
                     "mmfs_pkt - mmfs_cpu accuracy (1 heavy + 10 light queries, simulated)");

  const double step = args.quick ? 0.25 : 0.1;

  for (const bool minimum : {false, true}) {
    std::printf("\n%s accuracy difference (mmfs_pkt - mmfs_cpu):\n\n",
                minimum ? "Minimum" : "Average");
    std::vector<std::string> header = {"mq \\ K"};
    for (double k = 0.0; k <= 1.0 + 1e-9; k += step) {
      header.push_back(util::Fmt(k, 2));
    }
    util::Table table(header);
    for (double mq = 0.0; mq <= 1.0 + 1e-9; mq += step) {
      std::vector<std::string> row = {util::Fmt(mq, 2)};
      for (double k = 0.0; k <= 1.0 + 1e-9; k += step) {
        const auto point = game::SimulateLightHeavy(mq, k);
        row.push_back(util::Fmt(minimum ? point.min_diff() : point.avg_diff(), 2));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nPaper shape: the average-difference surface is nearly flat, while the\n"
      "minimum-accuracy difference shows a positive ridge (mmfs_pkt rescues\n"
      "the heavy query that cpu-fairness starves) that vanishes along the\n"
      "diagonal where the heavy query is disabled under both (Fig 5.1).\n\n");
  return 0;
}
