// Micro-benchmarks (google-benchmark) for the per-packet primitives whose
// "deterministic worst-case cost" the paper's design relies on (§3.2.1):
// H3 hashing, bitmap counting, feature extraction, FCBF + MLR fitting,
// samplers, Boyer-Moore and the allocation strategies.

#include <benchmark/benchmark.h>

#include "src/features/extractor.h"
#include "src/predict/fcbf.h"
#include "src/predict/predictors.h"
#include "src/query/boyer_moore.h"
#include "src/shed/sampler.h"
#include "src/shed/strategy.h"
#include "src/sketch/bitmap.h"
#include "src/sketch/h3.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/rng.h"

namespace {

using namespace shedmon;

const trace::Trace& SharedTrace() {
  static const trace::Trace trace = [] {
    trace::TraceSpec spec = trace::CescaII();
    spec.duration_s = 3.0;
    return trace::TraceGenerator(spec).Generate();
  }();
  return trace;
}

const trace::Batch& SharedBatch() {
  static trace::Batch batch = [] {
    trace::Batcher batcher(SharedTrace(), 1'000'000);
    trace::Batch b;
    batcher.Next(b);
    return b;
  }();
  return batch;
}

void BM_H3Hash(benchmark::State& state) {
  sketch::H3Hash hash(1);
  const auto& packets = SharedBatch().packets;
  size_t i = 0;
  for (auto _ : state) {
    const auto key = packets[i % packets.size()].rec->tuple.Bytes();
    benchmark::DoNotOptimize(hash.Hash(key.data(), key.size()));
    ++i;
  }
}
BENCHMARK(BM_H3Hash);

void BM_MultiResBitmapInsert(benchmark::State& state) {
  sketch::MultiResBitmap bitmap;
  util::Rng rng(2);
  for (auto _ : state) {
    bitmap.Insert(rng.NextU64());
  }
}
BENCHMARK(BM_MultiResBitmapInsert);

void BM_MultiResBitmapEstimate(benchmark::State& state) {
  sketch::MultiResBitmap bitmap;
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    bitmap.Insert(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.Estimate());
  }
}
BENCHMARK(BM_MultiResBitmapEstimate);

void BM_FeatureExtraction(benchmark::State& state) {
  features::FeatureExtractor extractor;
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(packets));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FeatureExtraction);

void BM_MlrFitAndPredict(benchmark::State& state) {
  predict::MlrPredictor::Config cfg;
  cfg.history = static_cast<size_t>(state.range(0));
  predict::MlrPredictor predictor(cfg);
  util::Rng rng(4);
  features::FeatureVector f{};
  for (size_t i = 0; i < cfg.history; ++i) {
    f[features::kFeatPackets] = 100.0 + rng.NextDouble() * 400.0;
    f[features::kFeatBytes] = f[features::kFeatPackets] * 700.0;
    f[features::kFeatNewFiveTuple] = 10.0 + rng.NextDouble() * 100.0;
    predictor.Observe(f, 40.0 * f[features::kFeatPackets]);
  }
  for (auto _ : state) {
    f[features::kFeatPackets] = 100.0 + rng.NextDouble() * 400.0;
    f[features::kFeatBytes] = f[features::kFeatPackets] * 700.0;
    predictor.Observe(f, 40.0 * f[features::kFeatPackets]);
    benchmark::DoNotOptimize(predictor.Predict(f));
  }
}
BENCHMARK(BM_MlrFitAndPredict)->Arg(30)->Arg(60)->Arg(120);

void BM_FcbfSelection(benchmark::State& state) {
  const size_t n = 60;
  predict::Matrix x(n, features::kNumFeatures);
  std::vector<double> y(n);
  util::Rng rng(5);
  for (size_t r = 0; r < n; ++r) {
    for (int c = 0; c < features::kNumFeatures; ++c) {
      x.At(r, static_cast<size_t>(c)) = rng.NextDouble() * 100.0;
    }
    y[r] = x.At(r, 0) * 40.0 + rng.NextGaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::SelectFeatures(x, y, 0.6));
  }
}
BENCHMARK(BM_FcbfSelection);

void BM_PacketSampler(benchmark::State& state) {
  shed::PacketSampler sampler(6);
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(packets, 0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_PacketSampler);

void BM_FlowSampler(benchmark::State& state) {
  shed::FlowSampler sampler(7);
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(packets, 0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FlowSampler);

void BM_BoyerMoore(benchmark::State& state) {
  const query::BoyerMoore matcher("GET / HTTP/1.1");
  std::vector<uint8_t> text(1460);
  util::Rng rng(8);
  for (auto& b : text) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Find(text.data(), text.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_BoyerMoore);

void BM_MmfsAllocation(benchmark::State& state) {
  const auto strategy = shed::MakeStrategy(shed::StrategyKind::kMmfsPkt);
  std::vector<shed::QueryDemand> demands(static_cast<size_t>(state.range(0)));
  util::Rng rng(9);
  double total = 0.0;
  for (auto& d : demands) {
    d.predicted_cycles = 100.0 + rng.NextDouble() * 1000.0;
    d.min_sampling_rate = rng.NextDouble() * 0.5;
    total += d.predicted_cycles;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->Allocate(demands, total * 0.5));
  }
}
BENCHMARK(BM_MmfsAllocation)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
