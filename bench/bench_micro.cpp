// Micro-benchmarks (google-benchmark) for the per-packet primitives whose
// "deterministic worst-case cost" the paper's design relies on (§3.2.1):
// H3 hashing (fused and per-aggregate), bitmap counting, feature extraction,
// FCBF + MLR fitting, samplers, Boyer-Moore, the allocation strategies, and
// a whole-pipeline packets/sec run.
//
// Run with --benchmark_out=<file> --benchmark_out_format=json to produce the
// machine-readable results that BENCH_*.json baselines are built from (see
// tools/make_bench_baseline.py and the "Performance" section of README.md).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/api/pipeline.h"
#include "src/core/cost.h"
#include "src/core/system.h"
#include "src/obs/trace.h"
#include "src/features/extractor.h"
#include "src/predict/fcbf.h"
#include "src/predict/predictors.h"
#include "src/query/boyer_moore.h"
#include "src/query/queries.h"
#include "src/shed/sampler.h"
#include "src/shed/strategy.h"
#include "src/sketch/bitmap.h"
#include "src/sketch/fused_hash.h"
#include "src/sketch/h3.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/trace/spec.h"
#include "src/util/rng.h"

namespace {

using namespace shedmon;

const trace::Trace& SharedTrace() {
  static const trace::Trace trace = [] {
    trace::TraceSpec spec = trace::CescaII();
    spec.duration_s = 3.0;
    return trace::TraceGenerator(spec).Generate();
  }();
  return trace;
}

const trace::Batch& SharedBatch() {
  static trace::Batch batch = [] {
    trace::Batcher batcher(SharedTrace(), 1'000'000);
    trace::Batch b;
    batcher.Next(b);
    return b;
  }();
  return batch;
}

void BM_H3Hash(benchmark::State& state) {
  sketch::H3Hash hash(1);
  const auto& packets = SharedBatch().packets;
  size_t i = 0;
  for (auto _ : state) {
    const auto key = packets[i % packets.size()].rec->tuple.Bytes();
    benchmark::DoNotOptimize(hash.Hash(key.data(), key.size()));
    ++i;
  }
}
BENCHMARK(BM_H3Hash);

// A/B pair for the fused hot path: all ten per-aggregate hashes of a packet
// computed in one fused table pass vs. the pre-fusion reference (key
// materialization + one H3 walk per aggregate). Identical outputs; the ratio
// is the point.
void BM_FusedAggregateHash(benchmark::State& state) {
  const sketch::FusedTupleHasher fused = features::MakeAggregateHasher(0x5eed);
  const auto& packets = SharedBatch().packets;
  std::array<uint64_t, features::kNumAggregates> h{};
  size_t i = 0;
  for (auto _ : state) {
    const auto key = packets[i % packets.size()].rec->tuple.Bytes();
    fused.HashAllFixed<13, features::kNumAggregates>(key.data(), h);
    benchmark::DoNotOptimize(h);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FusedAggregateHash);

void BM_UnfusedAggregateHash(benchmark::State& state) {
  std::vector<sketch::H3Hash> hashes;
  for (int a = 0; a < features::kNumAggregates; ++a) {
    hashes.emplace_back(
        features::AggregateHashSeed(0x5eed, static_cast<features::Aggregate>(a)));
  }
  const auto& packets = SharedBatch().packets;
  std::array<uint64_t, features::kNumAggregates> h{};
  uint8_t key[13];
  size_t i = 0;
  for (auto _ : state) {
    const net::FiveTuple& t = packets[i % packets.size()].rec->tuple;
    for (int a = 0; a < features::kNumAggregates; ++a) {
      const size_t len =
          features::AggregateKey(t, static_cast<features::Aggregate>(a), key);
      h[static_cast<size_t>(a)] = hashes[static_cast<size_t>(a)].Hash(key, len);
    }
    benchmark::DoNotOptimize(h);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UnfusedAggregateHash);

void BM_MultiResBitmapInsert(benchmark::State& state) {
  sketch::MultiResBitmap bitmap;
  util::Rng rng(2);
  for (auto _ : state) {
    bitmap.Insert(rng.NextU64());
  }
}
BENCHMARK(BM_MultiResBitmapInsert);

void BM_MultiResBitmapEstimate(benchmark::State& state) {
  sketch::MultiResBitmap bitmap;
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    bitmap.Insert(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitmap.Estimate());
  }
}
BENCHMARK(BM_MultiResBitmapEstimate);

void BM_FeatureExtraction(benchmark::State& state) {
  features::FeatureExtractor extractor;
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Extract(packets));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FeatureExtraction);

// The pre-fusion extraction path, kept as the regression reference for the
// fused Extract (BM_FeatureExtraction above).
void BM_FeatureExtractionUnfused(benchmark::State& state) {
  features::FeatureExtractor extractor;
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.ExtractReference(packets));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FeatureExtractionUnfused);

void BM_MlrFitAndPredict(benchmark::State& state) {
  predict::MlrPredictor::Config cfg;
  cfg.history = static_cast<size_t>(state.range(0));
  predict::MlrPredictor predictor(cfg);
  util::Rng rng(4);
  features::FeatureVector f{};
  for (size_t i = 0; i < cfg.history; ++i) {
    f[features::kFeatPackets] = 100.0 + rng.NextDouble() * 400.0;
    f[features::kFeatBytes] = f[features::kFeatPackets] * 700.0;
    f[features::kFeatNewFiveTuple] = 10.0 + rng.NextDouble() * 100.0;
    predictor.Observe(f, 40.0 * f[features::kFeatPackets]);
  }
  for (auto _ : state) {
    f[features::kFeatPackets] = 100.0 + rng.NextDouble() * 400.0;
    f[features::kFeatBytes] = f[features::kFeatPackets] * 700.0;
    predictor.Observe(f, 40.0 * f[features::kFeatPackets]);
    benchmark::DoNotOptimize(predictor.Predict(f));
  }
}
BENCHMARK(BM_MlrFitAndPredict)->Arg(30)->Arg(60)->Arg(120);

void BM_FcbfSelection(benchmark::State& state) {
  const size_t n = 60;
  predict::Matrix x(n, features::kNumFeatures);
  std::vector<double> y(n);
  util::Rng rng(5);
  for (size_t r = 0; r < n; ++r) {
    for (int c = 0; c < features::kNumFeatures; ++c) {
      x.At(r, static_cast<size_t>(c)) = rng.NextDouble() * 100.0;
    }
    y[r] = x.At(r, 0) * 40.0 + rng.NextGaussian();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict::SelectFeatures(x, y, 0.6));
  }
}
BENCHMARK(BM_FcbfSelection);

void BM_PacketSampler(benchmark::State& state) {
  shed::PacketSampler sampler(6);
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(packets, 0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_PacketSampler);

void BM_FlowSampler(benchmark::State& state) {
  shed::FlowSampler sampler(7);
  const auto& packets = SharedBatch().packets;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(packets, 0.5));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FlowSampler);

// In-place sampling into a reused caller-owned buffer: the per-bin path of
// MonitoringSystem's per-query execute phase, which allocates nothing after
// warm-up.
void BM_PacketSamplerInto(benchmark::State& state) {
  shed::PacketSampler sampler(6);
  const auto& packets = SharedBatch().packets;
  trace::PacketVec out;
  for (auto _ : state) {
    sampler.SampleInto(packets, 0.5, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_PacketSamplerInto);

void BM_FlowSamplerInto(benchmark::State& state) {
  shed::FlowSampler sampler(7);
  const auto& packets = SharedBatch().packets;
  trace::PacketVec out;
  for (auto _ : state) {
    sampler.SampleInto(packets, 0.5, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(packets.size()));
}
BENCHMARK(BM_FlowSamplerInto);

void BM_BoyerMoore(benchmark::State& state) {
  const query::BoyerMoore matcher("GET / HTTP/1.1");
  std::vector<uint8_t> text(1460);
  util::Rng rng(8);
  for (auto& b : text) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Find(text.data(), text.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_BoyerMoore);

void BM_MmfsAllocation(benchmark::State& state) {
  const auto strategy = shed::MakeStrategy(shed::StrategyKind::kMmfsPkt);
  std::vector<shed::QueryDemand> demands(static_cast<size_t>(state.range(0)));
  util::Rng rng(9);
  double total = 0.0;
  for (auto& d : demands) {
    d.predicted_cycles = 100.0 + rng.NextDouble() * 1000.0;
    d.min_sampling_rate = rng.NextDouble() * 0.5;
    total += d.predicted_cycles;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy->Allocate(demands, total * 0.5));
  }
}
BENCHMARK(BM_MmfsAllocation)->Arg(8)->Arg(64);

// Whole-pipeline throughput: batching, prediction-stage extraction, shedding
// and two standard queries over the shared trace, under the deterministic
// model oracle. The items/sec figure is end-to-end packets per second of the
// monitoring system, the number the paper's "negligible shedder overhead"
// claim cashes out to.
void BM_PipelinePackets(benchmark::State& state) {
  const trace::Trace& trace = SharedTrace();
  for (auto _ : state) {
    core::SystemConfig cfg;
    core::MonitoringSystem system(cfg, core::MakeOracle(core::OracleKind::kModel));
    system.AddQuery(query::MakeQuery("counter"));
    system.AddQuery(query::MakeQuery("flows"));
    trace::Batcher batcher(trace, cfg.time_bin_us);
    trace::Batch batch;
    while (batcher.Next(batch)) {
      system.ProcessBatch(batch);
    }
    system.Finish();
    benchmark::DoNotOptimize(system.total_packets());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.packets.size()));
}
BENCHMARK(BM_PipelinePackets)->Unit(benchmark::kMillisecond);

// Same workload with the span tracer armed on every stage: the paired gate
// in tools/compare_bench.py holds this within 5% of BM_PipelinePackets, the
// budget the lock-free per-thread rings are designed to.
void BM_PipelinePacketsTraced(benchmark::State& state) {
  const trace::Trace& trace = SharedTrace();
  for (auto _ : state) {
    core::SystemConfig cfg;
    core::MonitoringSystem system(cfg, core::MakeOracle(core::OracleKind::kModel));
    obs::Tracer tracer;
    tracer.AttachMetrics(&system.metrics());
    system.SetTracer(&tracer);
    system.AddQuery(query::MakeQuery("counter"));
    system.AddQuery(query::MakeQuery("flows"));
    trace::Batcher batcher(trace, cfg.time_bin_us);
    trace::Batch batch;
    while (batcher.Next(batch)) {
      system.ProcessBatch(batch);
    }
    system.Finish();
    benchmark::DoNotOptimize(system.total_packets());
    benchmark::DoNotOptimize(tracer.dropped());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.packets.size()));
}
BENCHMARK(BM_PipelinePacketsTraced)->Unit(benchmark::kMillisecond);

// Fourteen-query workload for BM_PipelinePacketsThreads: the standard mix
// plus duplicate instances, the shape of a CoMo box loaded with many user
// queries. Duplicating the byte-heavy giants (trace, pattern-search) keeps
// any single query under a quarter of the total work, so the LPT schedule
// stays balanced at four workers.
std::vector<std::string> ScalingWorkload() {
  return {"counter", "flows",          "application", "top-k", "autofocus",
          "super-sources", "high-watermark", "trace",       "flows", "pattern-search",
          "top-k",   "application",    "trace",       "pattern-search"};
}

// Deterministic parallel-makespan speedup of a finished run under the model
// oracle: per-bin query work (BinLog::per_query_cycles) is assigned to
// `threads` workers greedily (LPT); the shared prediction-stage extraction
// plus subsystem overheads (ps, ls, como) stay on the coordinator. This is
// the machine-independent companion to the wall-clock numbers: on a
// single-core host (like the box that records BENCH_*.json) the wall clock
// cannot scale, but the model makespan — computed from the same
// bit-reproducible cycle charges — shows what the sharding buys.
//
// `splits` models intra-query data parallelism: query q's per-bin work is
// divided into splits[q] equal chunks before scheduling (1 = the batch stays
// whole, the per-query ceiling of the PR 3 model). An empty vector means no
// intra-query sharding. This mirrors the executor's near-equal unit ranges;
// per-chunk skew from uneven payloads is ignored, so treat the counter as
// the schedule bound, not a measurement.
double ModelMakespanSpeedup(const std::vector<core::BinLog>& log, size_t threads,
                            const std::vector<size_t>& splits = {}) {
  if (threads == 0) {
    threads = 1;
  }
  double serial_total = 0.0;
  double parallel_total = 0.0;
  for (const core::BinLog& bin : log) {
    // como_cycles is an emulated accounting charge (capture/storage share of
    // the budget), not work this process executes, so it is not part of
    // either schedule.
    const double coordinator = bin.ps_cycles + bin.ls_cycles;
    std::vector<double> work;
    for (size_t q = 0; q < bin.per_query_cycles.size(); ++q) {
      const size_t s = q < splits.size() ? std::max<size_t>(1, splits[q]) : 1;
      for (size_t c = 0; c < s; ++c) {
        work.push_back(bin.per_query_cycles[q] / static_cast<double>(s));
      }
    }
    std::sort(work.begin(), work.end(), std::greater<double>());
    std::vector<double> workers(threads, 0.0);
    for (const double w : work) {
      *std::min_element(workers.begin(), workers.end()) += w;
    }
    serial_total += coordinator + bin.query_cycles;
    parallel_total += coordinator + *std::max_element(workers.begin(), workers.end());
  }
  return parallel_total > 0.0 ? serial_total / parallel_total : 1.0;
}

// Whole-pipeline thread-scaling benchmark: per-query stages sharded over
// SystemConfig::num_threads workers (threads:0 = the serial path). Outputs
// are bit-identical at every thread count, so the throughput ratio is pure
// execution speed. items_per_second is wall-clock (needs >= `threads` cores
// to scale); the model_speedup counter is the deterministic makespan ratio
// defined above.
void BM_PipelinePacketsThreads(benchmark::State& state) {
  const trace::Trace& trace = SharedTrace();
  const size_t threads = static_cast<size_t>(state.range(0));
  double model_speedup = 1.0;
  for (auto _ : state) {
    core::SystemConfig cfg;
    // Ample budget: no shedding, so every query processes full batches and
    // the parallel stages carry all the work the serial path would.
    cfg.cycles_per_bin = 1e15;
    cfg.num_threads = threads;
    core::MonitoringSystem system(cfg, core::MakeOracle(core::OracleKind::kModel));
    for (const auto& name : ScalingWorkload()) {
      system.AddQuery(query::MakeQuery(name));
    }
    trace::Batcher batcher(trace, cfg.time_bin_us);
    trace::Batch batch;
    while (batcher.Next(batch)) {
      system.ProcessBatch(batch);
    }
    system.Finish();
    benchmark::DoNotOptimize(system.total_packets());
    model_speedup = ModelMakespanSpeedup(system.log(), threads);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.packets.size()));
  state.counters["model_speedup"] = model_speedup;
}
BENCHMARK(BM_PipelinePacketsThreads)
    ->ArgName("threads")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    // Wall-clock rates: with workers doing the processing, the main thread's
    // CPU time would overstate throughput.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Intra-query sharding on top of the thread pool: the same fourteen-query
// workload, whose 4-thread makespan is bounded at ~3.6x by its costliest
// query (the byte-heavy pattern-search) when batches stay whole. Splitting a
// query's batch into up to `shards` mergeable ranges lifts that per-query
// ceiling: the model_speedup counter at threads:4 must rise past the 3.6x
// bound as shards grow. Outputs stay bit-identical to the serial run at
// every (threads, shards) combination — the property exec_test sweeps.
void BM_PipelinePacketsShards(benchmark::State& state) {
  const trace::Trace& trace = SharedTrace();
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  // The model splits mirror the executor's plan: shardable queries divide
  // into at most `shards` chunks, bounded by the execution contexts
  // (workers + participating coordinator); trace is the one query in this
  // workload with order-sensitive state and stays whole.
  std::vector<size_t> splits;
  for (const auto& name : ScalingWorkload()) {
    const bool shardable = query::MakeQuery(name)->shardable() != nullptr;
    splits.push_back(shardable ? std::max<size_t>(1, std::min(shards, threads + 1)) : 1);
  }
  double model_speedup = 1.0;
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.cycles_per_bin = 1e15;
    cfg.num_threads = threads;
    cfg.max_shards_per_query = shards;
    core::MonitoringSystem system(cfg, core::MakeOracle(core::OracleKind::kModel));
    for (const auto& name : ScalingWorkload()) {
      system.AddQuery(query::MakeQuery(name));
    }
    trace::Batcher batcher(trace, cfg.time_bin_us);
    trace::Batch batch;
    while (batcher.Next(batch)) {
      system.ProcessBatch(batch);
    }
    system.Finish();
    benchmark::DoNotOptimize(system.total_packets());
    model_speedup = ModelMakespanSpeedup(system.log(), threads, splits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.packets.size()));
  state.counters["model_speedup"] = model_speedup;
}
BENCHMARK(BM_PipelinePacketsShards)
    ->ArgNames({"threads", "shards"})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Capture ingest: copied vs pinned payloads
// ---------------------------------------------------------------------------

// One giant open bin so the loop measures Push/PushPinned alone — no bin
// closes, no query work. The copied_bytes_per_packet counter is the measurable
// form of the capture front-end's zero-copy claim: the pinned path must report
// 0.0 while the classic arena-copy path reports the mean payload size.
std::unique_ptr<api::Pipeline> IngestOnlyPipeline() {
  core::SystemConfig config;
  config.shedder = core::ShedderKind::kNoShed;
  config.cycles_per_bin = 1e15;
  config.time_bin_us = 3'600'000'000ULL;
  api::PipelineBuilder builder;
  builder.Config(config).AddQuery("counter");
  return builder.BuildUnique();
}

void RunCaptureIngest(benchmark::State& state, bool pinned) {
  const trace::Trace& trace = SharedTrace();
  // Materialize every payload once up front; the bench then measures only
  // the ingest boundary, the same shape as capture slots feeding the
  // pipeline.
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(trace.packets.size());
  for (const auto& rec : trace.packets) {
    payloads.emplace_back(rec.payload_len);
    if (rec.payload_len > 0) {
      trace::MaterializePayload(rec, payloads.back().data());
    }
  }

  auto pipeline = IngestOnlyPipeline();
  uint64_t copied = 0;
  uint64_t payload_bytes = 0;
  int64_t pushes = 0;
  size_t i = 0;
  size_t since_rebuild = 0;
  for (auto _ : state) {
    const net::PacketRecord& rec = trace.packets[i];
    net::Packet packet{&rec, payloads[i].empty() ? nullptr : payloads[i].data(),
                       rec.payload_len};
    if (pinned) {
      pipeline->PushPinned(packet);
    } else {
      pipeline->Push(packet);
    }
    payload_bytes += rec.payload_len;
    ++pushes;
    if (++i == trace.packets.size()) {
      i = 0;
    }
    // The open bin accumulates records; start fresh periodically (untimed)
    // so the bench measures steady-state ingest, not memory growth.
    if (++since_rebuild == 200'000) {
      state.PauseTiming();
      pipeline->Finish();  // Stats() snapshots refresh on bin close
      copied += pipeline->Stats().ingest_copied_bytes;
      pipeline = IngestOnlyPipeline();
      since_rebuild = 0;
      state.ResumeTiming();
    }
  }
  pipeline->Finish();
  copied += pipeline->Stats().ingest_copied_bytes;
  state.SetItemsProcessed(pushes);
  state.SetBytesProcessed(static_cast<int64_t>(payload_bytes));
  state.counters["copied_bytes_per_packet"] =
      pushes > 0 ? static_cast<double>(copied) / static_cast<double>(pushes) : 0.0;
}

void BM_CaptureIngestCopy(benchmark::State& state) { RunCaptureIngest(state, false); }
BENCHMARK(BM_CaptureIngestCopy);

void BM_CaptureIngestPinned(benchmark::State& state) { RunCaptureIngest(state, true); }
BENCHMARK(BM_CaptureIngestPinned);

}  // namespace

BENCHMARK_MAIN();
