// Table 5.2: minimum sampling-rate constraints (m_q) and per-query accuracy
// of the five systems (no_lshed / reactive / eq_srates / mmfs_cpu /
// mmfs_pkt) when resource demands are twice the system capacity (K = 0.5),
// on the nine-query set.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 5.2", "per-query accuracy of five strategies at K = 0.5");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  const auto names = query::StandardNineQueryNames();

  struct System {
    std::string label;
    core::ShedderKind shedder;
    shed::StrategyKind strategy;
  };
  const std::vector<System> systems = {
      {"no_lshed", core::ShedderKind::kNoShed, shed::StrategyKind::kEqSrates},
      {"reactive", core::ShedderKind::kReactive, shed::StrategyKind::kEqSrates},
      {"eq_srates", core::ShedderKind::kPredictive, shed::StrategyKind::kEqSrates},
      {"mmfs_cpu", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsCpu},
      {"mmfs_pkt", core::ShedderKind::kPredictive, shed::StrategyKind::kMmfsPkt},
  };

  std::vector<core::RunResult> results;
  for (const auto& system : systems) {
    results.push_back(bench::RunAtOverload(trace, names, 0.5, system.shedder, system.strategy,
                                           args, /*custom=*/false, /*min_rates=*/true));
  }

  util::Table table({"query", "mq", "no_lshed", "reactive", "eq_srates", "mmfs_cpu",
                     "mmfs_pkt"});
  for (size_t q = 0; q < names.size(); ++q) {
    std::vector<std::string> row = {names[q], util::Fmt(core::DefaultMinRate(names[q]), 2)};
    for (auto& result : results) {
      // Accuracy per Fig. 5.3: 1 - error when the minimum rate was honoured.
      row.push_back(util::Fmt(result.MeanAccuracy(q), 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::printf("\nAverage / minimum accuracy across queries:\n\n");
  util::Table avg({"system", "avg", "min"});
  for (size_t s = 0; s < systems.size(); ++s) {
    avg.AddRow({systems[s].label, util::Fmt(results[s].AverageAccuracy(), 2),
                util::Fmt(results[s].MinimumAccuracy(), 2)});
  }
  avg.Print(std::cout);
  std::printf(
      "\nPaper shape: mmfs_cpu and mmfs_pkt keep every query's accuracy within\n"
      "its bound (autofocus/super-sources near 0.95+ where the alternatives\n"
      "drive them to ~0); eq_srates loses the high-m_q queries; no_lshed and\n"
      "reactive lose several (Table 5.2).\n\n");
  return 0;
}
