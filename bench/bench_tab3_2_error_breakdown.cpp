// Table 3.2: breakdown of MLR+FCBF prediction error by query on the four
// datasets, with the features the selection algorithm found most relevant —
// the paper's evidence that the selected features reveal what each (black
// box) query is doing.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 3.2", "prediction error breakdown by query, with selected features");

  std::vector<trace::TraceSpec> specs = {trace::CescaI(), trace::CescaII()};
  if (!args.quick) {
    specs.push_back(trace::Abilene());
    specs.push_back(trace::Cenic());
  }
  auto oracle = core::MakeOracle(args.oracle);

  for (auto& spec : specs) {
    const auto trace =
        trace::TraceGenerator(bench::Scaled(spec, args, args.quick ? 6.0 : 15.0)).Generate();
    std::printf("\n%s trace (%s):\n\n", spec.name.c_str(),
                spec.payloads ? "with payloads" : "without payloads");
    util::Table table({"query", "mean", "stdev", "selected features"});
    for (const auto& name : bench::SevenQueries()) {
      predict::PredictorConfig cfg;
      cfg.kind = predict::PredictorKind::kMlr;
      const auto run = bench::RunPredictionExperiment(trace, name, cfg, *oracle);
      table.AddRow({name, util::Fmt(run.MeanError(), 4), util::Fmt(run.StdevError(), 4),
                    bench::TopSelectedFeatures(run.selection_counts, 2)});
    }
    table.Print(std::cout);
  }
  std::printf(
      "\nPaper shape: per-query mean error in the low percent range; flows /\n"
      "top-k select flow-related 'new' features, byte-driven queries select\n"
      "bytes on payload traces and packets on header-only ones (Table 3.2).\n\n");
  return 0;
}
