// Fig. 6.9: behaviour in front of new query arrivals — queries join the
// running pipeline every few seconds through AdvanceTime + AddQuery; the
// system re-balances the sampling rates and absorbs each arrival without
// uncontrolled loss.

#include "bench/bench_common.h"
#include "src/api/pipeline.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.9", "system response to new query arrivals");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 10.0 : 20.0))
                         .Generate();
  const std::vector<std::string> arrivals = {"counter", "flows", "top-k", "p2p-detector",
                                             "high-watermark"};

  // Capacity fits roughly three of the five queries: later arrivals force
  // re-allocation.
  const double demand = core::MeasureMeanDemand(arrivals, trace, args.oracle);
  constexpr uint64_t kBinUs = 100'000;
  auto pipeline = PipelineBuilder()
                      .TimeBin(kBinUs)
                      .CyclesPerBin(0.6 * demand)
                      .Shedder(core::ShedderKind::kPredictive)
                      .Strategy(shed::StrategyKind::kMmfsPkt)
                      .CustomShedding()
                      .Oracle(args.oracle)
                      .Build();

  // Streaming arrivals: AdvanceTime closes every bin before the arrival
  // instant, then AddQuery joins the query exactly at that bin.
  const size_t num_bins = static_cast<size_t>((trace.duration_us() + kBinUs - 1) / kBinUs);
  const size_t arrival_gap = num_bins / (arrivals.size() + 1);
  size_t next_arrival = 0;
  for (const net::PacketRecord& packet : trace.packets) {
    while (next_arrival < arrivals.size() &&
           packet.ts_us >= next_arrival * arrival_gap * kBinUs) {
      const uint64_t arrival_us = next_arrival * arrival_gap * kBinUs;
      pipeline.AdvanceTime(arrival_us);
      pipeline.AddQuery(arrivals[next_arrival],
                        {core::DefaultMinRate(arrivals[next_arrival]), true});
      std::printf("t=%4.1fs  + query '%s' arrives\n",
                  static_cast<double>(arrival_us) * 1e-6, arrivals[next_arrival].c_str());
      ++next_arrival;
    }
    pipeline.Push(net::Packet::View(packet));
  }
  pipeline.Finish();
  const core::MonitoringSystem& system = pipeline.system();

  std::printf("\nMean sampling rate per second (columns appear as queries join):\n\n");
  std::vector<std::string> header = {"t (s)"};
  for (const auto& name : arrivals) {
    header.push_back(name);
  }
  header.push_back("drops");
  util::Table table(header);
  const auto& log = system.log();
  for (size_t s = 0; s * 10 < log.size(); ++s) {
    std::vector<util::RunningStats> rates(arrivals.size());
    double drops = 0.0;
    for (size_t j = s * 10; j < std::min(log.size(), (s + 1) * 10); ++j) {
      for (size_t q = 0; q < log[j].rate.size(); ++q) {
        rates[q].Add(log[j].rate[q]);
      }
      drops += static_cast<double>(log[j].packets_dropped);
    }
    std::vector<std::string> row = {util::Fmt(static_cast<double>(s), 0)};
    for (size_t q = 0; q < arrivals.size(); ++q) {
      row.push_back(rates[q].count() > 0 ? util::Fmt(rates[q].mean(), 2) : "-");
    }
    row.push_back(util::Fmt(drops, 0));
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf("\ntotal uncontrolled drops: %llu\n",
              static_cast<unsigned long long>(system.total_dropped()));
  std::printf(
      "\nPaper shape: each arrival lowers the common rate smoothly; the system\n"
      "absorbs all five arrivals without uncontrolled losses (Fig 6.9).\n\n");
  return system.total_dropped() == 0 ? 0 : 1;
}
