// Fig. 4.5 / 4.6: CPU usage and flows-query error with and without load
// shedding under an injected spoofed SYN flood, on the header-only (CESCA-I)
// and payload (CESCA-II) traces; flow sampling vs packet sampling accuracy.

#include "bench/bench_common.h"

namespace {

using namespace shedmon;

void RunScenario(const trace::TraceSpec& base, const bench::BenchArgs& args) {
  auto trace =
      trace::TraceGenerator(bench::Scaled(base, args, args.quick ? 8.0 : 20.0)).Generate();
  trace::DdosSpec flood;
  flood.start_s = trace.spec.duration_s * 0.4;
  flood.duration_s = trace.spec.duration_s * 0.25;
  flood.pps = 2500.0;
  flood.spoofed_sources = true;
  flood.syn_flood = true;
  InjectDdos(trace, flood, 99 + args.seed_offset);

  const std::vector<std::string> names = {"flows"};
  std::printf("\n%s + SYN flood:\n\n", base.name.c_str());

  util::Table table({"system", "mean CPU/bin", "max CPU/bin", "flows err", "drops"});
  for (const auto shedder : {core::ShedderKind::kPredictive, core::ShedderKind::kNoShed}) {
    auto result = bench::RunAtOverload(trace, names, 0.4, shedder,
                                       shed::StrategyKind::kEqSrates, args,
                                       /*custom=*/false, /*min_rates=*/false);
    util::RunningStats cpu;
    for (const auto& bin : result.system->log()) {
      cpu.Add(bin.query_cycles + bin.ps_cycles + bin.ls_cycles + bin.como_cycles);
    }
    table.AddRow({shedder == core::ShedderKind::kPredictive ? "load shedding (flow sampl.)"
                                                            : "no load shedding",
                  util::FmtSci(cpu.mean(), 2), util::FmtSci(cpu.max(), 2),
                  util::FmtPercent(result.Accuracy(0).mean_error, 2),
                  std::to_string(result.system->total_dropped())});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = shedmon::bench::BenchArgs::Parse(argc, argv);
  shedmon::bench::PrintHeader("Fig 4.5/4.6",
                              "CPU and flows-query error under a SYN flood, with/without LS");
  RunScenario(shedmon::trace::CescaI(), args);
  RunScenario(shedmon::trace::CescaII(), args);
  std::printf(
      "\nPaper shape: with shedding the CPU stays within ~5%% of the target and\n"
      "the flow-sampled estimate errs ~1%%; without shedding the CPU more than\n"
      "doubles during the attack and the error lands in the 35-40%% range\n"
      "(Figs 4.5/4.6).\n\n");
  return 0;
}
