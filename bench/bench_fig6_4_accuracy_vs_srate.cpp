// Fig. 6.4: accuracy as a function of the sampling rate for high-watermark,
// top-k and p2p-detector under uniform packet sampling — the validation
// curve used to pick minimum rates, and the motivation for custom shedding
// (the p2p-detector degrades steeply under sampling).

#include "bench/bench_common.h"

#include "src/shed/sampler.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.4",
                     "accuracy vs packet-sampling rate (high-watermark, top-k, p2p-detector)");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 8.0 : 15.0))
                         .Generate();
  const std::vector<std::string> names = {"high-watermark", "top-k", "p2p-detector"};
  auto reference = query::RunReference(names, trace);

  std::vector<std::string> header = {"srate"};
  for (const auto& name : names) {
    header.push_back(name);
  }
  util::Table table(header);
  const std::vector<double> rates = args.quick
                                        ? std::vector<double>{0.1, 0.5, 1.0}
                                        : std::vector<double>{0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  for (const double rate : rates) {
    std::vector<std::string> row = {util::Fmt(rate, 2)};
    for (size_t qi = 0; qi < names.size(); ++qi) {
      auto q = query::MakeQuery(names[qi]);
      shed::PacketSampler sampler(7 + args.seed_offset);
      trace::Batcher batcher(trace, 100'000);
      trace::Batch batch;
      size_t in_interval = 0;
      while (batcher.Next(batch)) {
        const trace::PacketVec sampled = sampler.Sample(batch.packets, rate);
        query::BatchInput in{sampled, batch.start_us, batch.duration_us, rate};
        q->ProcessBatch(in);
        if (++in_interval >= q->interval_bins()) {
          q->EndInterval();
          in_interval = 0;
        }
      }
      if (in_interval > 0) {
        q->EndInterval();
      }
      row.push_back(util::Fmt(1.0 - q->MeanError(*reference[qi]), 2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: high-watermark and top-k degrade gracefully with the\n"
      "rate; the p2p-detector collapses quickly because sampling breaks its\n"
      "payload-signature inspection (Fig 6.4).\n\n");
  return 0;
}
