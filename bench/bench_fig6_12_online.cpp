// Fig. 6.12 / 6.13 / 6.14 and Table 6.2: the long "online execution" of
// §6.4, scaled down — the complete system (mmfs_pkt + custom shedding)
// running every query for an extended period: CPU after shedding vs
// predicted load, traffic/buffer/drops, overall accuracy and mean shedding
// rate over time, and the final per-query accuracy table.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.12-6.14 / Table 6.2", "long online execution of the full system");

  trace::TraceSpec spec = trace::UpcI();
  spec.duration_s = args.quick ? 15.0 : 60.0;
  auto trace = trace::TraceGenerator(bench::Scaled(spec, args)).Generate();
  // Mid-run anomaly, as the online runs of the thesis experienced.
  trace::DdosSpec ddos;
  ddos.start_s = spec.duration_s * 0.55;
  ddos.duration_s = spec.duration_s * 0.12;
  ddos.pps = 3000.0;
  InjectDdos(trace, ddos, 3 + args.seed_offset);

  const auto names = query::AllQueryNames();
  auto result = bench::RunAtOverload(trace, names, 0.3, core::ShedderKind::kPredictive,
                                     shed::StrategyKind::kMmfsPkt, args,
                                     /*custom=*/true, /*min_rates=*/true);

  std::printf("Fig 6.12/6.13 — CPU, predicted load, buffer and drops over time:\n\n");
  const auto seconds = bench::PerSecond(result.system->log());
  util::Table ts({"t (s)", "packets", "used cycles", "predicted", "buffer occ", "drops"});
  const size_t stride = seconds.size() > 20 ? seconds.size() / 20 : 1;
  for (size_t s = 0; s < seconds.size(); s += stride) {
    ts.AddRow({util::Fmt(static_cast<double>(s), 0), util::Fmt(seconds[s].packets, 0),
               util::FmtSci(seconds[s].query_cycles, 2),
               util::FmtSci(seconds[s].predicted, 2),
               util::Fmt(seconds[s].backlog / (2.0 * result.system->capacity()), 2),
               util::Fmt(seconds[s].dropped, 0)});
  }
  ts.Print(std::cout);

  std::printf("\nFig 6.14 — overall accuracy and mean shedding rate per second:\n\n");
  util::Table acc_ts({"t (s)", "mean srate"});
  for (size_t s = 0; s < seconds.size(); s += stride) {
    acc_ts.AddRow({util::Fmt(static_cast<double>(s), 0),
                   util::Fmt(seconds[s].mean_rate, 2)});
  }
  acc_ts.Print(std::cout);

  std::printf("\nTable 6.2 — breakdown of the accuracy by query (mean ± stdev):\n\n");
  util::Table acc({"query", "accuracy"});
  for (size_t q = 0; q < names.size(); ++q) {
    const auto row = result.Accuracy(q);
    acc.AddRow({names[q], util::Fmt(1.0 - row.mean_error, 2) + " ±" +
                              util::Fmt(row.stdev_error, 2)});
  }
  acc.Print(std::cout);
  std::printf("\noverall: avg accuracy %.2f | min %.2f | drops %llu / %llu packets\n",
              result.AverageAccuracy(), result.MinimumAccuracy(),
              static_cast<unsigned long long>(result.system->total_dropped()),
              static_cast<unsigned long long>(result.system->total_packets()));
  std::printf(
      "\nPaper shape: predicted load exceeds the capacity for most of the run;\n"
      "post-shedding usage hugs it; the buffer stays far from full (no DAG\n"
      "drops) and per-query accuracy stays high (Figs 6.12-6.14, Table 6.2).\n\n");
  return result.system->total_dropped() == 0 ? 0 : 1;
}
