// Fig. 6.6 / 6.7: a monitoring system without custom shedding running
// eq_srates versus the full system (mmfs_pkt + custom shedding), under the
// same overload: CPU control, drops, and per-query accuracy.

#include "bench/bench_common.h"
#include "src/api/run.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fig 6.6/6.7",
                     "eq_srates without custom shedding vs mmfs_pkt with custom shedding");

  const auto trace = trace::TraceGenerator(
                         bench::Scaled(trace::UpcI(), args, args.quick ? 8.0 : 15.0))
                         .Generate();
  const std::vector<std::string> names = {"high-watermark", "top-k", "p2p-detector",
                                          "counter", "flows"};

  struct System {
    std::string label;
    shed::StrategyKind strategy;
    bool custom;
  };
  const std::vector<System> systems = {
      {"eq_srates, no custom (Fig 6.6)", shed::StrategyKind::kEqSrates, false},
      {"mmfs_pkt + custom (Fig 6.7)", shed::StrategyKind::kMmfsPkt, true},
  };

  // Both system runs are independent; --threads=N runs them concurrently
  // over the pool with bit-identical results. Each cell drives the
  // api::Pipeline facade. --shards=N moves the parallelism inside each cell
  // instead: cells run sequentially, each with --threads workers and
  // intra-query sharding up to N — outputs are byte-identical either way.
  const double demand = core::MeasureMeanDemand(names, trace, args.oracle);
  const auto pool = args.shards > 0 ? nullptr : args.MakePool();
  const auto results = api::RunPipelineGrid(
      systems.size(),
      [&](size_t cell) {
        auto spec = bench::SpecAtOverload(demand, names, 0.5, core::ShedderKind::kPredictive,
                                          systems[cell].strategy, args, systems[cell].custom,
                                          /*default_min_rates=*/true);
        args.ApplyIntraQuerySharding(spec);
        return spec;
      },
      trace, pool.get());

  for (size_t s = 0; s < systems.size(); ++s) {
    const auto& system = systems[s];
    const auto& result = *results[s];
    std::printf("\n%s:\n\n", system.label.c_str());
    util::Table table({"query", "accuracy", "mean rate"});
    for (size_t q = 0; q < names.size(); ++q) {
      util::RunningStats rate;
      for (const auto& bin : result.log()) {
        if (q < bin.rate.size()) {
          rate.Add(bin.rate[q]);
        }
      }
      table.AddRow({names[q], util::Fmt(result.MeanAccuracyAt(q), 2),
                    util::Fmt(rate.mean(), 2)});
    }
    table.Print(std::cout);
    std::printf("avg accuracy %.2f | min accuracy %.2f | uncontrolled drops %llu\n",
                result.AverageAccuracy(), result.MinimumAccuracy(),
                static_cast<unsigned long long>(result.total_dropped()));
  }
  std::printf(
      "\nPaper shape: the full system raises both the average and (especially)\n"
      "the minimum accuracy over the eq_srates baseline while staying free of\n"
      "uncontrolled drops (Figs 6.6/6.7).\n\n");
  return 0;
}
