#pragma once

// Harness for the Ch. 3 prediction experiments: runs one query over a trace
// batch-by-batch, predicting each batch's cost before executing it, exactly
// like the validation of §3.3 (no load shedding involved).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cost.h"
#include "src/features/extractor.h"
#include "src/predict/predictors.h"
#include "src/query/queries.h"
#include "src/trace/batch.h"
#include "src/trace/generator.h"
#include "src/util/stats.h"

namespace shedmon::bench {

struct PredictionRun {
  std::vector<double> predicted;  // per batch
  std::vector<double> actual;
  std::vector<double> error;  // |1 - predicted/actual|, after warm-up
  double extraction_cycles = 0.0;
  double fit_cycles = 0.0;  // FCBF + MLR (or SLR/EWMA upkeep)
  double query_cycles = 0.0;
  std::map<int, size_t> selection_counts;

  double MeanError() const {
    util::RunningStats s;
    for (const double e : error) {
      s.Add(e);
    }
    return s.mean();
  }
  double StdevError() const {
    util::RunningStats s;
    for (const double e : error) {
      s.Add(e);
    }
    return s.stdev();
  }
  double MaxError() const {
    double m = 0.0;
    for (const double e : error) {
      m = std::max(m, e);
    }
    return m;
  }
};

inline PredictionRun RunPredictionExperiment(const trace::Trace& trace,
                                             const std::string& query_name,
                                             const predict::PredictorConfig& config,
                                             core::CostOracle& oracle,
                                             size_t warmup_batches = 10) {
  PredictionRun run;
  auto query = query::MakeQuery(query_name);
  auto predictor = predict::MakePredictor(config);
  features::FeatureExtractor extractor;

  trace::Batcher batcher(trace, 100'000);
  trace::Batch batch;
  size_t bin = 0;
  size_t in_interval = 0;
  while (batcher.Next(batch)) {
    features::FeatureVector f{};
    core::WorkHint extract_hint{nullptr, &batch.packets, 0.0};
    run.extraction_cycles += oracle.Run(core::WorkKind::kFeatureExtraction, extract_hint,
                                        [&] { f = extractor.Extract(batch.packets); });

    const double predicted = predictor->Predict(f);

    query::BatchInput in{batch.packets, batch.start_us, batch.duration_us, 1.0};
    core::WorkHint query_hint{query.get(), &batch.packets, 0.0};
    const double actual =
        oracle.Run(core::WorkKind::kQuery, query_hint, [&] { query->ProcessBatch(in); });
    run.query_cycles += actual;

    core::WorkHint fit_hint{query.get(), nullptr, static_cast<double>(config.history)};
    run.fit_cycles +=
        oracle.Run(core::WorkKind::kFcbfMlr, fit_hint, [&] { predictor->Observe(f, actual); });

    run.predicted.push_back(predicted);
    run.actual.push_back(actual);
    if (bin >= warmup_batches && actual > 0.0) {
      run.error.push_back(util::RelativeError(predicted, actual));
    }
    if (++in_interval >= query->interval_bins()) {
      query->EndInterval();
      extractor.StartInterval();
      in_interval = 0;
    }
    ++bin;
  }
  if (const auto* mlr = dynamic_cast<const predict::MlrPredictor*>(predictor.get())) {
    run.selection_counts = mlr->selection_counts();
  }
  return run;
}

// Names of the most frequently selected features across a run (Table 3.2).
inline std::string TopSelectedFeatures(const std::map<int, size_t>& counts, size_t n = 2) {
  std::vector<std::pair<size_t, int>> ranked;
  for (const auto& [idx, c] : counts) {
    ranked.emplace_back(c, idx);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::string out;
  for (size_t i = 0; i < ranked.size() && i < n; ++i) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::string(features::FeatureName(ranked[i].second));
  }
  return out.empty() ? "-" : out;
}

inline const std::vector<std::string>& SevenQueries() {
  static const std::vector<std::string> names = query::StandardSevenQueryNames();
  return names;
}

}  // namespace shedmon::bench
