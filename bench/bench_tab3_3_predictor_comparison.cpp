// Table 3.3: EWMA vs SLR vs MLR+FCBF error statistics per query under normal
// traffic (CESCA-II), the §3.4.2 comparison.

#include "bench/bench_common.h"
#include "bench/predict_harness.h"

int main(int argc, char** argv) {
  using namespace shedmon;
  const auto args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Table 3.3", "EWMA / SLR / MLR+FCBF error statistics per query");

  const auto trace =
      trace::TraceGenerator(bench::Scaled(trace::CescaII(), args, 15.0)).Generate();
  auto oracle = core::MakeOracle(args.oracle);

  predict::PredictorConfig ewma_cfg;
  ewma_cfg.kind = predict::PredictorKind::kEwma;
  predict::PredictorConfig slr_cfg;
  slr_cfg.kind = predict::PredictorKind::kSlr;
  predict::PredictorConfig mlr_cfg;
  mlr_cfg.kind = predict::PredictorKind::kMlr;

  util::Table table({"query", "EWMA mean", "EWMA sd", "SLR mean", "SLR sd", "MLR mean",
                     "MLR sd"});
  util::RunningStats ewma_all;
  util::RunningStats slr_all;
  util::RunningStats mlr_all;
  for (const auto& name : bench::SevenQueries()) {
    const auto ewma = bench::RunPredictionExperiment(trace, name, ewma_cfg, *oracle);
    const auto slr = bench::RunPredictionExperiment(trace, name, slr_cfg, *oracle);
    const auto mlr = bench::RunPredictionExperiment(trace, name, mlr_cfg, *oracle);
    table.AddRow({name, util::Fmt(ewma.MeanError(), 4), util::Fmt(ewma.StdevError(), 4),
                  util::Fmt(slr.MeanError(), 4), util::Fmt(slr.StdevError(), 4),
                  util::Fmt(mlr.MeanError(), 4), util::Fmt(mlr.StdevError(), 4)});
    ewma_all.Add(ewma.MeanError());
    slr_all.Add(slr.MeanError());
    mlr_all.Add(mlr.MeanError());
  }
  table.AddRow({"(average)", util::Fmt(ewma_all.mean(), 4), "", util::Fmt(slr_all.mean(), 4),
                "", util::Fmt(mlr_all.mean(), 4), ""});
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: MLR+FCBF has the smallest and most stable error; SLR does\n"
      "well on packet-driven queries but degrades on byte/flow-driven ones;\n"
      "EWMA is uniformly worst (Table 3.3).\n\n");
  return (mlr_all.mean() <= slr_all.mean() && slr_all.mean() <= ewma_all.mean() * 1.5) ? 0 : 1;
}
